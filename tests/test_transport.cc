// Tests for the socket transport seam: frame codec hardening (magic,
// version, corrupt length prefixes), partial write / short read reassembly,
// per-channel FIFO over real sockets, peer-vanishes-mid-frame recovery, the
// incarnation hello, zero-copy delivery (one shared block per received
// packet), and bounded writer-queue backpressure against slow readers.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket_transport.h"

namespace windar::net {
namespace {

using namespace std::chrono_literals;

Packet make(int src, int dst, std::uint64_t seq, std::size_t payload = 0,
            std::size_t meta = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  util::Bytes body(payload);
  for (std::size_t i = 0; i < payload; ++i) {
    body[i] = static_cast<std::uint8_t>((seq + i) & 0xFF);
  }
  p.payload = util::Buffer(std::move(body));
  p.meta = util::Buffer(util::Bytes(meta, 0xAB));
  return p;
}

// A full job's worth of SocketTransports in one process, sharing a fresh
// socket directory — the loopback stand-in for N real rank processes.
struct SockMesh {
  std::string dir;
  std::vector<std::unique_ptr<SocketTransport>> nodes;

  explicit SockMesh(
      int n, const std::function<void(SocketTransportOptions&)>& tweak = {}) {
    char tmpl[] = "/tmp/windar_sock_XXXXXX";
    dir = ::mkdtemp(tmpl);
    for (int i = 0; i < n; ++i) {
      SocketTransportOptions o;
      o.endpoints = n;
      o.self = i;
      o.dir = dir;
      if (tweak) tweak(o);
      nodes.push_back(std::make_unique<SocketTransport>(o));
    }
  }

  ~SockMesh() {
    for (auto& t : nodes) t->shutdown();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  SocketTransport& operator[](int i) {
    return *nodes[static_cast<std::size_t>(i)];
  }

  FabricStats merged() const {
    FabricStats s;
    for (const auto& t : nodes) s.merge(t->stats());
    return s;
  }

  // The invariant is over merged stats and only once nothing is in a writer
  // queue or kernel buffer — poll until the accounting closes.
  FabricStats quiesced() const {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      const FabricStats s = merged();
      if (s.accounted()) return s;
      std::this_thread::sleep_for(500us);
    }
    return merged();
  }
};

std::optional<Packet> pop_within(SocketTransport& t, int ep,
                                 std::chrono::milliseconds ms = 5000ms) {
  return t.endpoint(ep).inbox().pop_until(std::chrono::steady_clock::now() +
                                          ms);
}

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodec, HeaderRoundTrip) {
  Packet p = make(3, 7, 0xDEADBEEFull, 100, 20);
  p.kind = 42;
  p.tag = -5;
  const FrameHeaderBytes wire = encode_frame_header(p, 9);
  FrameHeader h;
  ASSERT_EQ(decode_frame_header(wire, kDefaultMaxSectionBytes, &h),
            FrameError::kNone);
  EXPECT_EQ(h.kind, 42u);
  EXPECT_EQ(h.src, 3);
  EXPECT_EQ(h.dst, 7);
  EXPECT_EQ(h.tag, -5);
  EXPECT_EQ(h.seq, 0xDEADBEEFull);
  EXPECT_EQ(h.incarnation, 9u);
  EXPECT_EQ(h.meta_len, 20u);
  EXPECT_EQ(h.payload_len, 100u);
}

TEST(FrameCodec, DecoderReassemblesByteAtATime) {
  Packet p = make(0, 1, 11, 300, 32);
  const FrameHeaderBytes hdr = encode_frame_header(p, 1);
  util::Bytes wire(hdr.begin(), hdr.end());
  wire.insert(wire.end(), p.meta.begin(), p.meta.end());
  wire.insert(wire.end(), p.payload.begin(), p.payload.end());
  FrameDecoder dec;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_EQ(dec.feed({&wire[i], 1}), 1u) << "byte " << i;
  }
  auto out = dec.take_packet();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, 11u);
  EXPECT_EQ(out->meta, p.meta);
  EXPECT_EQ(out->payload, p.payload);
  // The two sections are views into the decoder's single body allocation.
  EXPECT_TRUE(out->meta.shares_storage_with(out->payload));
  EXPECT_TRUE(dec.at_frame_boundary());
}

TEST(FrameCodec, BadMagicIsAConnectionError) {
  FrameDecoder dec;
  util::Bytes junk(kFrameHeaderBytes, 0xFF);
  dec.feed(junk);
  EXPECT_EQ(dec.error(), FrameError::kBadMagic);
  EXPECT_FALSE(dec.take_packet().has_value());
  EXPECT_TRUE(dec.write_cursor().empty());  // stream is dead, not the process
}

TEST(FrameCodec, VersionMismatchIsAConnectionError) {
  FrameHeaderBytes hdr = encode_frame_header(make(0, 1, 1), 0);
  hdr[4] = kFrameVersion + 1;
  FrameDecoder dec;
  dec.feed(hdr);
  EXPECT_EQ(dec.error(), FrameError::kBadVersion);
}

TEST(FrameCodec, CorruptLengthPrefixIsRejectedNotAllocated) {
  // A flipped length byte must not become a giant allocation (the socket
  // extension of PR 4's ByteReader corrupt-prefix death tests — here the
  // reject is recoverable).
  FrameHeaderBytes hdr = encode_frame_header(make(0, 1, 1), 0);
  hdr[36] = 0xFF;  // payload_len low byte
  hdr[37] = 0xFF;
  hdr[38] = 0xFF;
  hdr[39] = 0x7F;
  FrameDecoder dec;
  dec.feed(hdr);
  EXPECT_EQ(dec.error(), FrameError::kOversize);
}

// --- Loopback socket transport ----------------------------------------------

TEST(SocketTransport, DeliversAcrossProcessBoundaryShapedSockets) {
  SockMesh mesh(2);
  mesh[0].send(make(0, 1, 7, 64));
  auto p = pop_within(mesh[1], 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src, 0);
  EXPECT_EQ(p->seq, 7u);
  EXPECT_EQ(p->payload.size(), 64u);
}

TEST(SocketTransport, SelfSendLoopsBack) {
  SockMesh mesh(2);
  mesh[0].send(make(0, 0, 3, 16));
  auto p = pop_within(mesh[0], 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 3u);
}

TEST(SocketTransport, PerChannelFifo) {
  SockMesh mesh(3);
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    mesh[0].send(make(0, 2, i, 8));
    mesh[1].send(make(1, 2, i, 8));
  }
  std::uint64_t next0 = 1, next1 = 1;
  for (std::uint64_t i = 0; i < 2 * kN; ++i) {
    auto p = pop_within(mesh[2], 2);
    ASSERT_TRUE(p.has_value()) << "after " << i << " packets";
    std::uint64_t& next = (p->src == 0) ? next0 : next1;
    EXPECT_EQ(p->seq, next) << "channel " << p->src << "->2";
    ++next;
  }
  EXPECT_EQ(next0, kN + 1);
  EXPECT_EQ(next1, kN + 1);
}

TEST(SocketTransport, PartialWritesReassembleLargeFrames) {
  // Shrink the send buffer so a 256 KiB frame takes many partial sendmsg
  // rounds; the receiver must still see one intact packet per send.
  SockMesh mesh(2, [](SocketTransportOptions& o) { o.sndbuf_bytes = 4096; });
  constexpr std::size_t kBig = 256 * 1024;
  for (std::uint64_t i = 1; i <= 4; ++i) mesh[0].send(make(0, 1, i, kBig, 48));
  for (std::uint64_t i = 1; i <= 4; ++i) {
    auto p = pop_within(mesh[1], 1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
    ASSERT_EQ(p->payload.size(), kBig);
    ASSERT_EQ(p->meta.size(), 48u);
    for (std::size_t b = 0; b < kBig; b += 4097) {
      ASSERT_EQ(p->payload[b], static_cast<std::uint8_t>((i + b) & 0xFF))
          << "offset " << b;
    }
    // Zero re-copy on receive: both sections alias one shared block.
    EXPECT_TRUE(p->meta.shares_storage_with(p->payload));
  }
  const FabricStats s = mesh.quiesced();
  EXPECT_TRUE(s.accounted());
  EXPECT_EQ(s.frame_errors, 0u);
}

TEST(SocketTransport, HelloAnnouncesIncarnation) {
  SockMesh mesh(2, [](SocketTransportOptions& o) {
    o.incarnation = static_cast<std::uint32_t>(o.self + 5);
  });
  mesh[0].send(make(0, 1, 1));
  ASSERT_TRUE(pop_within(mesh[1], 1).has_value());
  EXPECT_EQ(mesh[1].peer_incarnation(0), 5u);
  EXPECT_EQ(mesh[1].peer_incarnation(1), 0u);  // nothing heard from self-slot
}

TEST(SocketTransport, DeadPeerWritesBookAsDroppedDead) {
  auto mesh = std::make_unique<SockMesh>(2);
  (*mesh)[0].send(make(0, 1, 1, 32));
  ASSERT_TRUE(pop_within((*mesh)[1], 1).has_value());
  // The peer process vanishes (its transport, listener and all, goes away —
  // the loopback analogue of SIGKILL).
  (*mesh)[1].shutdown();
  (*mesh)[0].send(make(0, 1, 2, 32));
  (*mesh)[0].send(make(0, 1, 3, 32));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  FabricStats s = (*mesh)[0].stats();
  while (std::chrono::steady_clock::now() < deadline &&
         s.packets_dropped_dead < 2) {
    std::this_thread::sleep_for(1ms);
    s = (*mesh)[0].stats();
  }
  EXPECT_EQ(s.packets_sent, 3u);
  EXPECT_EQ(s.packets_dropped_dead, 2u);
  // The first packet's `delivered` lives in the peer's slab (a real dead
  // process would take it to the grave — the documented merged-stats
  // caveat); merging both slabs closes the books.
  EXPECT_TRUE(mesh->merged().accounted());
}

TEST(SocketTransport, LocalKillMarksPeerUnreachable) {
  SockMesh mesh(2);
  mesh[0].kill(1);
  mesh[0].send(make(0, 1, 1));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline &&
         mesh[0].stats().packets_dropped_dead < 1) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(mesh[0].stats().packets_dropped_dead, 1u);
  mesh[0].revive(1);
  mesh[0].send(make(0, 1, 2));
  auto p = pop_within(mesh[1], 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 2u);
}

TEST(SocketTransport, KilledSelfDropsIncomingAsDead) {
  SockMesh mesh(2);
  mesh[1].kill(1);  // crash the hosted endpoint: inbox is volatile state
  mesh[0].send(make(0, 1, 1));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline &&
         mesh[1].stats().packets_dropped_dead < 1) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(mesh[1].stats().packets_dropped_dead, 1u);
  mesh[1].revive(1);
  mesh[0].send(make(0, 1, 2));
  auto p = pop_within(mesh[1], 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 2u);
}

// --- Hostile bytes on the wire ----------------------------------------------

// Raw client for poking the listener with exactly the bytes we choose.
int raw_connect(const std::string& dir, EndpointId id) {
  const std::string path = SocketTransport::socket_path(dir, id);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void wait_for_frame_errors(SocketTransport& t, std::uint64_t want) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline &&
         t.stats().frame_errors < want) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(t.stats().frame_errors, want);
}

TEST(SocketTransport, GarbageBytesCloseConnectionNotProcess) {
  SockMesh mesh(2);
  const int fd = raw_connect(mesh.dir, 1);
  util::Bytes junk(64, 0xEE);
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  wait_for_frame_errors(mesh[1], 1);
  ::close(fd);
  // The transport survives and keeps serving well-formed peers.
  mesh[0].send(make(0, 1, 9, 32));
  auto p = pop_within(mesh[1], 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 9u);
}

TEST(SocketTransport, CorruptLengthPrefixClosesConnection) {
  SockMesh mesh(2);
  const int fd = raw_connect(mesh.dir, 1);
  FrameHeaderBytes hdr = encode_frame_header(make(0, 1, 1), 0);
  hdr[36] = hdr[37] = hdr[38] = 0xFF;  // payload_len -> ~4 GiB
  hdr[39] = 0x7F;
  ASSERT_EQ(::send(fd, hdr.data(), hdr.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hdr.size()));
  wait_for_frame_errors(mesh[1], 1);
  ::close(fd);
  mesh[0].send(make(0, 1, 10));
  ASSERT_TRUE(pop_within(mesh[1], 1).has_value());
}

TEST(SocketTransport, PeerVanishingMidFrameIsCountedTruncation) {
  SockMesh mesh(2);
  const int fd = raw_connect(mesh.dir, 1);
  // A valid header promising 1 KiB... followed by the peer dying after 100
  // bytes (what SIGKILL does to an in-flight frame).
  Packet p = make(0, 1, 1, 1024);
  const FrameHeaderBytes hdr = encode_frame_header(p, 0);
  ASSERT_EQ(::send(fd, hdr.data(), hdr.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hdr.size()));
  ASSERT_EQ(::send(fd, p.payload.data(), 100, MSG_NOSIGNAL), 100);
  ::close(fd);
  wait_for_frame_errors(mesh[1], 1);
  // The half-frame never reached the inbox.
  EXPECT_EQ(mesh[1].stats().packets_delivered, 0u);
  mesh[0].send(make(0, 1, 2));
  ASSERT_TRUE(pop_within(mesh[1], 1).has_value());
}

// --- Writer-queue backpressure ----------------------------------------------

TEST(SocketTransport, SlowReaderBoundsWriterQueueAndBlocksProducer) {
  // The unbounded-writer-queue bug: a peer that stops reading used to let
  // the sender's per-peer queue grow without limit (RSS explosion during
  // recovery storms).  Stand in a raw listener for endpoint 1 that accepts
  // but does not read, and check that (a) the producer blocks after the
  // bounded queue fills, (b) the high-water mark respects the cap, and
  // (c) draining the socket releases the producer — no kill needed.
  char tmpl[] = "/tmp/windar_sock_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);
  const std::string path = SocketTransport::socket_path(dir, 1);
  const int srv = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(srv, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(srv, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  ASSERT_EQ(::listen(srv, 4), 0);

  SocketTransportOptions o;
  o.endpoints = 2;
  o.self = 0;
  o.dir = dir;
  o.sndbuf_bytes = 4096;             // tiny kernel buffer: stall fast
  o.writer_queue_max_packets = 8;
  o.writer_queue_max_bytes = 32u * 1024;
  auto t = std::make_unique<SocketTransport>(o);

  constexpr int kSends = 300;
  std::atomic<int> sent{0};
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kSends; ++i) {
      t->send(make(0, 1, i, 4096));
      sent.fetch_add(1);
    }
  });

  // The producer must stall well short of kSends: cap + one in-write packet
  // + the few the 4 KiB kernel buffer absorbs.
  std::this_thread::sleep_for(300ms);
  const int stalled_at = sent.load();
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(sent.load(), stalled_at);  // fully blocked, not trickling
  EXPECT_LT(stalled_at, kSends / 2);
  const std::uint64_t hwm = t->stats().writer_queue_hwm;
  EXPECT_GT(hwm, 0u);
  // reserve admits a packet only while queued_bytes < max, so the peak can
  // overshoot by at most one frame.
  EXPECT_LE(hwm, o.writer_queue_max_bytes + 5u * 1024);

  // A reader showing up is enough to finish the job — backpressure releases
  // without any fault-path involvement.
  std::thread drainer([&] {
    const int conn = ::accept(srv, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    char buf[65536];
    while (::read(conn, buf, sizeof(buf)) > 0) {
    }
    ::close(conn);
  });
  producer.join();
  EXPECT_EQ(sent.load(), kSends);
  t->shutdown();  // closes the stream; the drainer sees EOF
  drainer.join();
  t.reset();
  ::close(srv);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(SocketTransport, KillReleasesBackpressuredProducer) {
  // Same stall, but the peer is declared dead instead of catching up: the
  // blocked send must return (dead-drop accounting) rather than hang.
  char tmpl[] = "/tmp/windar_sock_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);
  const std::string path = SocketTransport::socket_path(dir, 1);
  const int srv = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(srv, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(srv, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(srv, 4), 0);

  SocketTransportOptions o;
  o.endpoints = 2;
  o.self = 0;
  o.dir = dir;
  o.sndbuf_bytes = 4096;
  o.writer_queue_max_packets = 4;
  auto t = std::make_unique<SocketTransport>(o);

  constexpr int kSends = 64;
  std::atomic<int> sent{0};
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kSends; ++i) {
      t->send(make(0, 1, i, 4096));
      sent.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(300ms);
  EXPECT_LT(sent.load(), kSends);
  t->kill(1);
  producer.join();
  EXPECT_EQ(sent.load(), kSends);
  t->shutdown();
  t.reset();
  ::close(srv);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// --- Chaos parity -----------------------------------------------------------

TEST(SocketTransport, ChaosDuplicateAndKillMatchFabricAccounting) {
  SockMesh mesh(2);
  FaultSchedule chaos;
  ChaosEvent dup;
  dup.when = ChaosEvent::When::kSend;
  dup.action = ChaosEvent::Action::kDuplicate;
  dup.endpoint = 0;
  dup.nth = 2;
  chaos.add(dup);
  ChaosEvent kill;
  kill.when = ChaosEvent::When::kSend;
  kill.action = ChaosEvent::Action::kKill;
  kill.endpoint = 0;
  kill.nth = 4;
  chaos.set_kill_handler(
      [&](const ChaosEvent& fired) { mesh[0].kill(fired.target); });
  chaos.add(kill);
  mesh[0].set_chaos(&chaos);
  for (std::uint64_t i = 1; i <= 5; ++i) mesh[0].send(make(0, 1, i, 16));
  // Expect: 1, 2, 2 (dup), 3 delivered; 4 chaos-dropped; 5 delivered.
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 5; ++i) {
    auto p = pop_within(mesh[1], 1);
    ASSERT_TRUE(p.has_value());
    seqs.push_back(p->seq);
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 2, 3, 5}));
  const FabricStats s = mesh.quiesced();
  EXPECT_EQ(s.packets_sent, 6u);  // 5 sends + 1 duplicate
  EXPECT_EQ(s.packets_dropped_chaos, 1u);
  EXPECT_EQ(s.packets_delivered, 5u);
  EXPECT_TRUE(s.accounted());
  EXPECT_FALSE(mesh[0].endpoint(0).alive());
}

}  // namespace
}  // namespace windar::net
