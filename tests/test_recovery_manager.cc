// RecoveryManager unit tests: the rollback/checkpoint choreography driven
// directly against a tiny fabric — image assembly and CHECKPOINT_ADVANCE
// fan-out, restore round-trips, the survivor's resend-then-RESPOND duty, and
// the PWD determinant-gather gate.  Rank 1 is played by the test itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/fabric.h"
#include "windar/codec.h"
#include "windar/recovery_manager.h"

namespace windar::ft {
namespace {

ProcessParams make_params(
    ProcessParams base, ProtocolKind proto, std::uint32_t incarnation) {
  ProcessParams p = base;
  p.rank = 0;
  p.n = 2;
  p.protocol = proto;
  p.incarnation = incarnation;
  return p;
}

// Zero jitter and zero per-byte cost: every packet has the same delay, so
// arrival order equals send order and the resend/response sequence the
// protocol mandates is observable.
net::LatencyModel flat_latency() {
  return net::LatencyModel{std::chrono::nanoseconds(1'000),
                           std::chrono::nanoseconds(0),
                           std::chrono::nanoseconds(0)};
}

// A rank-0 recovery engine without the delivery plane (not needed here).
struct Engine {
  Engine(net::Fabric& f, CheckpointStore& s, ProtocolKind proto,
         std::uint32_t incarnation, ProcessParams base = {})
      : params(make_params(base, proto, incarnation)),
        channels(2, 0),
        tracker(make_protocol(proto, 0, 2)),
        log(2),
        path(f, params, life, channels, tracker, log, metrics),
        rec(f, s, params, channels, log, tracker, path, metrics) {}

  void append_log(int dst, SeqNo idx) {
    LogEntry e;
    e.send_index = idx;
    e.tag = 0;
    e.payload = util::Bytes{static_cast<std::uint8_t>(idx)};
    log.append(dst, std::move(e));
  }

  ProcessParams params;
  LifeFlags life;
  ChannelState channels;
  ProtocolHost tracker;
  SenderLog log;
  SharedMetrics metrics;
  SendPath path;
  RecoveryManager rec;
};

TEST(RecoveryManager, CheckpointSavesImageAndAdvertisesLogRelease) {
  net::Fabric fabric(2, flat_latency(), 11);
  CheckpointStore store;
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);

  eng.channels.next_send_index(1);
  eng.channels.next_send_index(1);
  eng.append_log(1, 1);
  eng.append_log(1, 2);
  eng.channels.advance_deliver(1);
  eng.channels.advance_deliver(1);
  eng.channels.advance_deliver(1);

  const util::Bytes app{42, 43};
  eng.rec.checkpoint(app);

  ASSERT_TRUE(store.has(0));
  const auto image = store.load(0);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->ckpt_seq, 1u);
  EXPECT_EQ(image->app, app);
  EXPECT_EQ(image->last_send, (std::vector<SeqNo>{0, 2}));
  EXPECT_EQ(image->last_deliver, (std::vector<SeqNo>{0, 3}));
  EXPECT_EQ(image->delivered_total, 3u);
  EXPECT_EQ(eng.metrics.snapshot().checkpoints, 1u);

  // We delivered past the previous (nonexistent) checkpoint: peer 1 must be
  // told it can release its log of messages to us (Algorithm 1 lines 34-37).
  auto p = fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kCheckpointAdvance));
  EXPECT_EQ(p->seq, 3u);  // release everything up to deliver index 3
  util::ByteReader r(p->payload);
  EXPECT_EQ(r.u32(), 3u);  // our delivered_total, for metadata GC
}

TEST(RecoveryManager, RestoreRoundTripAndRollbackAnnouncement) {
  net::Fabric fabric(2, flat_latency(), 12);
  CheckpointStore store;
  {
    Engine original(fabric, store, ProtocolKind::kTdi, 0);
    original.channels.next_send_index(1);
    original.channels.next_send_index(1);
    original.channels.advance_deliver(1);
    original.rec.checkpoint(util::Bytes{7});
    (void)fabric.endpoint(1).inbox().pop();  // drain the advance
  }

  Engine inc(fabric, store, ProtocolKind::kTdi, 1);
  fabric.revive(0);  // the old engine's teardown poisoned our endpoint
  inc.rec.restore_from_checkpoint();
  ASSERT_TRUE(inc.rec.restored_app().has_value());
  EXPECT_EQ(*inc.rec.restored_app(), util::Bytes{7});
  EXPECT_EQ(inc.channels.delivered_total(), 1u);
  EXPECT_EQ(inc.channels.next_send_index(1), 3u);  // counters continue
  EXPECT_EQ(inc.metrics.snapshot().recoveries, 1u);
  EXPECT_TRUE(inc.rec.gate());  // TDI gathers nothing: deliveries may flow
  EXPECT_TRUE(inc.rec.retry_pending());  // but peer 1 has not responded yet

  inc.rec.announce_rollback();
  auto p = fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kRollback));
  EXPECT_EQ(p->seq, 1u);  // stamped with the incarnation number
  EXPECT_EQ(decode_rollback_body(p->payload), (std::vector<SeqNo>{0, 1}));

  // Peer 1's RESPONSE certifies it delivered 2 of our messages: rolling
  // forward must suppress re-sends 1 and 2, and the retry loop goes quiet.
  ResponseBody body;
  body.their_deliver_of_mine = 2;
  inc.rec.handle_response(
      1, control_packet(1, 0, Kind::kResponse, 0, body.encode()));
  EXPECT_FALSE(inc.rec.retry_pending());
  EXPECT_TRUE(inc.channels.should_suppress(1, 2));
  EXPECT_FALSE(inc.channels.should_suppress(1, 3));
}

TEST(RecoveryManager, SurvivorResendsFromLogThenResponds) {
  net::Fabric fabric(2, flat_latency(), 13);
  CheckpointStore store;
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);
  eng.append_log(1, 1);
  eng.append_log(1, 2);
  eng.append_log(1, 3);
  eng.channels.advance_deliver(1);
  eng.channels.advance_deliver(1);

  // Peer 1's incarnation 1 restored having delivered only message 1 from us.
  eng.rec.handle_rollback(1, /*peer_epoch=*/1, {1, 0});

  // Resends for indices 2 and 3 must precede the RESPONSE: the response
  // certifies every needed logged message is already in flight.
  for (const SeqNo expect_idx : {SeqNo{2}, SeqNo{3}}) {
    auto p = fabric.endpoint(1).inbox().pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->kind, wire(Kind::kApp));
    EXPECT_EQ(p->seq, expect_idx);
  }
  auto p = fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kResponse));
  const ResponseBody body = ResponseBody::decode(p->payload);
  EXPECT_EQ(body.their_deliver_of_mine, 2u);  // what we delivered from peer 1
  EXPECT_EQ(eng.metrics.snapshot().resent_msgs, 2u);

  // The rollback reset our suppression watermark to what the incarnation
  // actually restored.
  EXPECT_TRUE(eng.channels.should_suppress(1, 1));
  EXPECT_FALSE(eng.channels.should_suppress(1, 2));
}

TEST(RecoveryManager, GatherGateStaysClosedUntilAllResponses) {
  net::Fabric fabric(2, flat_latency(), 14);
  CheckpointStore store;  // empty: restart from scratch
  Engine eng(fabric, store, ProtocolKind::kTag, 1);

  eng.rec.restore_from_checkpoint();
  EXPECT_FALSE(eng.rec.restored_app().has_value());
  // TAG must reassemble replay knowledge before delivering anything.
  EXPECT_FALSE(eng.rec.gate());
  EXPECT_TRUE(eng.rec.retry_pending());

  ResponseBody body;  // peer never delivered from us; no determinants held
  eng.rec.handle_response(
      1, control_packet(1, 0, Kind::kResponse, 0, body.encode()));
  EXPECT_TRUE(eng.rec.gate());  // last outstanding survivor answered
  EXPECT_FALSE(eng.rec.retry_pending());
}

TEST(RecoveryManager, RollbackRetryBacksOffToCap) {
  net::Fabric fabric(2, flat_latency(), 16);
  CheckpointStore store;
  ProcessParams base;
  base.rollback_retry = std::chrono::milliseconds(5);
  base.rollback_retry_cap = std::chrono::milliseconds(40);
  Engine eng(fabric, store, ProtocolKind::kTdi, 1, base);

  eng.rec.restore_from_checkpoint();
  eng.rec.announce_rollback();
  // Peer 1 never answers (it is "down"); poll periodic() at a high rate for
  // 200 ms of wall time.
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(200)) {
    eng.rec.periodic();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto bcasts = eng.metrics.snapshot().rollback_broadcasts;
  // Backed-off retry times land at 5, 15, 35, 75, 115, 155, 195 ms: at most
  // 8 rounds including the announce.  A fixed 5 ms interval would produce
  // ~40.  The lower bound only needs the first couple of retries to land,
  // which even a sanitizer-slowed host manages in 200 ms of polling.
  EXPECT_GE(bcasts, 3u);
  EXPECT_LE(bcasts, 12u);
}

TEST(RecoveryManager, PeerRollbackGetsImmediateTargetedRebroadcast) {
  net::Fabric fabric(2, flat_latency(), 17);
  CheckpointStore store;
  Engine eng(fabric, store, ProtocolKind::kTdi, 1);

  eng.rec.restore_from_checkpoint();
  eng.rec.announce_rollback();
  auto p = fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kRollback));

  // Overlapping failures: peer 1's own incarnation announces a ROLLBACK
  // before ever answering ours — our first broadcast died with its old
  // incarnation.  The handler must answer resends + RESPONSE and then
  // re-send our pending ROLLBACK right away instead of waiting out the
  // backoff interval.
  eng.rec.handle_rollback(1, /*peer_epoch=*/1, {0, 0});
  p = fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kResponse));
  p = fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kRollback));
  EXPECT_TRUE(eng.rec.retry_pending());  // still no RESPONSE from peer 1
}

TEST(RecoveryManager, RepeatedRestoreIncrementsRecoveries) {
  net::Fabric fabric(2, flat_latency(), 18);
  CheckpointStore store;
  Engine eng(fabric, store, ProtocolKind::kTdi, 1);
  // The metrics sink contract is that counters accumulate: a sink observing
  // two restore cycles must count both.  The old code assigned
  // `recoveries = 1`, silently collapsing repeated failures into one.
  eng.rec.restore_from_checkpoint();
  EXPECT_EQ(eng.metrics.snapshot().recoveries, 1u);
  eng.rec.restore_from_checkpoint();
  EXPECT_EQ(eng.metrics.snapshot().recoveries, 2u);
}

// Drains everything the fabric has delivered to `ep` after letting in-flight
// packets land (flat latency is 1 us; 20 ms is orders of magnitude past it).
std::vector<net::Packet> settle_and_drain(net::Fabric& fabric, int ep) {
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<net::Packet> out;
  while (auto p = fabric.endpoint(ep).inbox().try_pop()) {
    out.push_back(std::move(*p));
  }
  return out;
}

// The durability gate, synchronous flavour: a kill between seal and fsync
// (simulated by the store's pre-commit drop hook) means the image never
// became stable — so no CHECKPOINT_ADVANCE may reach the peer, whose log
// entries are exactly what the next incarnation will replay from.
TEST(RecoveryManager, DroppedCommitSendsNoAdvance) {
  net::Fabric fabric(2, flat_latency(), 20);
  CheckpointStore store;
  store.set_pre_commit_hook_for_test(
      [](int) { return CheckpointStore::CommitAction::kDrop; });
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);
  eng.channels.advance_deliver(1);
  eng.channels.advance_deliver(1);

  eng.rec.checkpoint(util::Bytes{1});

  EXPECT_FALSE(store.has(0));
  EXPECT_EQ(store.stats().dropped_saves, 1u);
  // Sealed but never committed: counted as a checkpoint, not as a commit.
  EXPECT_EQ(eng.metrics.snapshot().checkpoints, 1u);
  EXPECT_EQ(eng.metrics.snapshot().ckpt_committed, 0u);
  for (const auto& p : settle_and_drain(fabric, 1)) {
    EXPECT_NE(p.kind, wire(Kind::kCheckpointAdvance));
  }
}

// The durability gate, asynchronous flavour: while the background writer is
// wedged inside the durable write, the advance must not have left — it is
// emitted strictly after the store reports the image stable.
TEST(RecoveryManager, AsyncCommitEmitsAdvanceOnlyAfterDurability) {
  net::Fabric fabric(2, flat_latency(), 21);
  CheckpointStore store;
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  store.set_pre_commit_hook_for_test([&](int) {
    entered.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return CheckpointStore::CommitAction::kProceed;
  });
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);
  eng.rec.start_writer();
  eng.channels.advance_deliver(1);
  eng.channels.advance_deliver(1);

  eng.rec.checkpoint(util::Bytes{5});  // returns after the seal
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Commit is mid-"fsync": nothing published, nothing advertised.
  EXPECT_FALSE(store.has(0));
  EXPECT_TRUE(settle_and_drain(fabric, 1).empty());
  EXPECT_EQ(eng.metrics.snapshot().ckpt_committed, 0u);

  release.store(true);
  eng.rec.flush_checkpoints();
  EXPECT_TRUE(store.has(0));
  EXPECT_EQ(eng.metrics.snapshot().ckpt_committed, 1u);
  const auto after = settle_and_drain(fabric, 1);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].kind, wire(Kind::kCheckpointAdvance));
  EXPECT_EQ(after[0].seq, 2u);
  eng.rec.stop_writer(/*drain=*/true);
}

// Killed teardown drops queued-but-uncommitted snapshots entirely: no file,
// no advance — the protocol treats them as if the checkpoint never happened.
TEST(RecoveryManager, KilledTeardownDropsQueuedCheckpoints) {
  net::Fabric fabric(2, flat_latency(), 22);
  CheckpointStore store;
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  store.set_pre_commit_hook_for_test([&](int) {
    entered.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return CheckpointStore::CommitAction::kProceed;
  });
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);
  eng.rec.start_writer();
  eng.channels.advance_deliver(1);
  eng.rec.checkpoint(util::Bytes{1});
  while (!entered.load()) {  // the writer is now wedged on commit #1
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  eng.channels.advance_deliver(1);
  eng.rec.checkpoint(util::Bytes{2});  // still queued

  // stop_writer joins the writer, which is wedged inside commit #1 — let it
  // finish from the side once the queue purge has happened.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true);
  });
  eng.rec.stop_writer(/*drain=*/false);  // fault-injected teardown
  releaser.join();

  // The first commit was already past the point of no return and completes;
  // the queued second snapshot is gone for good.
  eng.rec.flush_checkpoints();
  auto img = store.load(0);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->ckpt_seq, 1u);
  EXPECT_EQ(eng.metrics.snapshot().ckpt_committed, 1u);
}

// Survivor non-stop recovery: a replay longer than replay_burst drains in
// bursts across periodic() ticks; fresh application sends to the recovering
// rank park in the holdback queue and flush — suppression re-checked —
// after the RESPONSE.
TEST(RecoveryManager, PacedReplayParksFreshSendsUntilResponse) {
  net::Fabric fabric(2, flat_latency(), 23);
  CheckpointStore store;
  ProcessParams base;
  base.replay_burst = 2;
  Engine eng(fabric, store, ProtocolKind::kTdi, 0, base);
  for (SeqNo i = 1; i <= 5; ++i) {
    eng.channels.next_send_index(1);
    eng.append_log(1, i);
  }

  eng.rec.handle_rollback(1, /*peer_epoch=*/1, {0, 0});
  EXPECT_TRUE(eng.rec.work_pending());  // session still draining

  // Burst 1: resends 1-2 only; the RESPONSE must not have left yet.
  auto got = settle_and_drain(fabric, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_EQ(got[1].seq, 2u);

  // A fresh application send parks instead of racing the replay stream.
  const util::Bytes payload{9};
  eng.path.send_app(1, 0, payload);
  EXPECT_EQ(eng.metrics.snapshot().held_sends, 1u);
  EXPECT_TRUE(settle_and_drain(fabric, 1).empty());

  eng.rec.periodic();  // burst 2: resends 3-4
  got = settle_and_drain(fabric, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].seq, 4u);
  EXPECT_TRUE(eng.rec.work_pending());

  eng.rec.periodic();  // burst 3: resend 5, RESPONSE, then the held send
  got = settle_and_drain(fabric, 1);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].kind, wire(Kind::kApp));
  EXPECT_EQ(got[0].seq, 5u);
  EXPECT_EQ(got[1].kind, wire(Kind::kResponse));
  EXPECT_EQ(got[2].kind, wire(Kind::kApp));
  EXPECT_EQ(got[2].seq, 6u);  // the parked fresh send, flushed in order
  EXPECT_FALSE(eng.rec.work_pending());
  EXPECT_EQ(eng.metrics.snapshot().resent_msgs, 5u);
  // Each packet counted exactly once: 6 app sends, 1 held then transmitted.
  EXPECT_EQ(eng.metrics.snapshot().app_transmitted, 1u);
}

// Regression: a delayed ROLLBACK retransmit from an older incarnation must
// not rewind the replay stream already serving the newer one — restarting
// it would re-send from a stale watermark and certify with a RESPONSE the
// dead incarnation can never consume.
TEST(RecoveryManager, StaleEpochRollbackDoesNotRewindReplay) {
  net::Fabric fabric(2, flat_latency(), 31);
  CheckpointStore store;
  ProcessParams base;
  base.replay_burst = 2;
  Engine eng(fabric, store, ProtocolKind::kTdi, 0, base);
  for (SeqNo i = 1; i <= 5; ++i) {
    eng.channels.next_send_index(1);
    eng.append_log(1, i);
  }

  eng.rec.handle_rollback(1, /*peer_epoch=*/2, {0, 0});
  auto got = settle_and_drain(fabric, 1);
  ASSERT_EQ(got.size(), 2u);  // burst 1: seqs 1-2

  // The stale epoch-1 retransmit is dropped outright — no restart, no
  // extra packets — and the stream continues where it left off.
  eng.rec.handle_rollback(1, /*peer_epoch=*/1, {0, 0});
  EXPECT_TRUE(settle_and_drain(fabric, 1).empty());
  eng.rec.periodic();
  got = settle_and_drain(fabric, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 3u);
  EXPECT_EQ(got[1].seq, 4u);

  // A same-epoch retransmit (the peer saw nothing) still restarts.
  eng.rec.handle_rollback(1, /*peer_epoch=*/2, {0, 0});
  got = settle_and_drain(fabric, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 1u);
}

TEST(RecoveryManager, MalformedAdvanceReleasesNothing) {
  net::Fabric fabric(2, flat_latency(), 24);
  CheckpointStore store;
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);
  eng.append_log(1, 1);
  eng.append_log(1, 2);

  // Truncated payload (no u32 delivered_total): must be dropped whole —
  // releasing log entries on a bad packet would be unrecoverable.
  eng.rec.handle_checkpoint_advance(
      control_packet(1, 0, Kind::kCheckpointAdvance, /*upto=*/2, {}));
  EXPECT_EQ(eng.log.entries_for(1), 2u);
  EXPECT_EQ(eng.metrics.snapshot().log_released_entries, 0u);
  EXPECT_EQ(eng.metrics.snapshot().bad_packets, 1u);
}

TEST(RecoveryManager, CheckpointAdvanceReleasesSenderLog) {
  net::Fabric fabric(2, flat_latency(), 15);
  CheckpointStore store;
  Engine eng(fabric, store, ProtocolKind::kTdi, 0);
  eng.append_log(1, 1);
  eng.append_log(1, 2);
  eng.append_log(1, 3);

  util::ByteWriter w;
  w.u32(5);  // the peer's delivered_total, for protocol metadata GC
  eng.rec.handle_checkpoint_advance(
      control_packet(1, 0, Kind::kCheckpointAdvance, /*upto=*/2, w.take()));
  EXPECT_EQ(eng.log.entries_for(1), 1u);  // only index 3 survives
  EXPECT_EQ(eng.metrics.snapshot().log_released_entries, 2u);
}

}  // namespace
}  // namespace windar::ft
