// Tests for tree/dissemination collectives over point-to-point messages.
#include <gtest/gtest.h>

#include <atomic>

#include "mp/collectives.h"
#include "mp/runtime.h"

namespace windar::mp {
namespace {

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BcastFromEveryRoot) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    for (int root = 0; root < n; ++root) {
      util::Buffer data;
      if (c.rank() == root) data = {1, 2, 3, static_cast<std::uint8_t>(root)};
      data = coll.bcast(std::move(data), root);
      ASSERT_EQ(data.size(), 4u);
      EXPECT_EQ(data[3], root);
    }
  });
}

TEST_P(CollectivesP, ReduceSumOntoEveryRoot) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    for (int root = 0; root < n; ++root) {
      const double contrib[2] = {1.0, static_cast<double>(c.rank())};
      auto total = coll.reduce_sum(contrib, root);
      if (c.rank() == root) {
        ASSERT_EQ(total.size(), 2u);
        EXPECT_DOUBLE_EQ(total[0], n);
        EXPECT_DOUBLE_EQ(total[1], n * (n - 1) / 2.0);
      } else {
        EXPECT_TRUE(total.empty());
      }
    }
  });
}

TEST_P(CollectivesP, AllreduceSum) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    const double contrib[1] = {static_cast<double>(c.rank() + 1)};
    auto total = coll.allreduce_sum(contrib);
    ASSERT_EQ(total.size(), 1u);
    EXPECT_DOUBLE_EQ(total[0], n * (n + 1) / 2.0);
  });
}

TEST_P(CollectivesP, BarrierSeparatesPhases) {
  const int n = GetParam();
  auto counter = std::make_shared<std::atomic<int>>(0);
  run_raw(n, [n, counter](Comm& c) {
    Coll coll(c);
    counter->fetch_add(1);
    coll.barrier();
    // After the barrier, every rank must have incremented.
    EXPECT_EQ(counter->load(), n);
    coll.barrier();
  });
}

TEST_P(CollectivesP, GatherCollectsInRankOrder) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    const std::uint8_t mine[1] = {static_cast<std::uint8_t>(c.rank() * 3)};
    auto all = coll.gather(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0], r * 3);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Collectives, BackToBackOpsDoNotCrossMatch) {
  run_raw(4, [](Comm& c) {
    Coll coll(c);
    for (int round = 0; round < 20; ++round) {
      const double contrib[1] = {1.0};
      auto total = coll.allreduce_sum(contrib);
      ASSERT_DOUBLE_EQ(total[0], 4.0);
    }
  });
}

TEST(Collectives, SeqResetReproducesTags) {
  run_raw(2, [](Comm& c) {
    Coll coll(c);
    coll.reset_seq(17);
    EXPECT_EQ(coll.seq(), 17u);
  });
}

}  // namespace
}  // namespace windar::mp
