// Tests for probe and the non-blocking receive requests, on both
// transports, including overlap patterns and recovery interaction.
#include <gtest/gtest.h>

#include "mp/request.h"
#include "mp/runtime.h"
#include "windar/runtime.h"

namespace windar::mp {
namespace {

TEST(Probe, RawTransportSeesArrivedMessages) {
  run_raw(2, [](Comm& c) {
    if (c.rank() == 0) {
      send_value(c, 1, 7, 42);
    } else {
      // Spin until the message lands; probe never blocks.
      while (!c.probe(0, 7)) util::coop_yield();
      EXPECT_TRUE(c.probe());                 // wildcard also matches
      EXPECT_FALSE(c.probe(0, 99));           // wrong tag
      EXPECT_EQ(recv_value<int>(c, 0, 7), 42);
      EXPECT_FALSE(c.probe());                // consumed
    }
  });
}

TEST(Probe, FtTransportRespectsDeliveryGate) {
  ft::JobConfig cfg;
  cfg.n = 2;
  cfg.latency = net::LatencyModel::turbulent();
  ft::run_job(cfg, [](ft::Ctx& ctx) {
    if (ctx.rank() == 0) {
      send_value(ctx, 1, 3, 9);
    } else {
      while (!ctx.probe(0, 3)) util::coop_yield();
      EXPECT_EQ(recv_value<int>(ctx, 0, 3), 9);
      EXPECT_FALSE(ctx.probe(0, 3));
    }
  });
}

TEST(Request, TestThenWait) {
  run_raw(2, [](Comm& c) {
    if (c.rank() == 0) {
      util::coop_sleep_for(std::chrono::milliseconds(5));
      send_value(c, 1, 1, 5);
    } else {
      RecvRequest req = irecv(c, 0, 1);
      // May need several polls while the message is in flight.
      while (!req.test()) util::coop_yield();
      Message m = req.wait();
      EXPECT_EQ(util::from_bytes<int>(m.payload), 5);
      EXPECT_TRUE(req.completed());
    }
  });
}

TEST(Request, WaitWithoutTestBlocks) {
  run_raw(2, [](Comm& c) {
    if (c.rank() == 0) {
      send_value(c, 1, 1, 11);
    } else {
      RecvRequest req = irecv(c, 0, 1);
      EXPECT_EQ(util::from_bytes<int>(req.wait().payload), 11);
    }
  });
}

TEST(Request, WaitAnyReturnsFirstReady) {
  run_raw(3, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<RecvRequest> reqs;
      reqs.push_back(irecv(c, 1, 1));
      reqs.push_back(irecv(c, 2, 2));
      int sum = 0;
      for (int k = 0; k < 2; ++k) {
        const std::size_t i = wait_any(reqs);
        sum += util::from_bytes<int>(reqs[i].wait().payload);
      }
      EXPECT_EQ(sum, 30);
    } else {
      send_value(c, 0, c.rank(), c.rank() * 10);
    }
  });
}

TEST(Request, OverlapComputeWithHaloExchange) {
  // The MPI overlap idiom: post irecv, do local work, then wait — on the
  // recovery layer with a fault injected.
  ft::JobConfig cfg;
  cfg.n = 2;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.restart_delay_ms = 4;
  cfg.faults = {{1, 5.0}};
  auto result = ft::run_job(cfg, [](ft::Ctx& ctx) {
    const int peer = 1 - ctx.rank();
    double acc = 0;
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      acc = r.f64();
    }
    for (int i = start; i < 30; ++i) {
      if (i > 0 && i % 8 == 0) {
        util::ByteWriter w;
        w.i32(i);
        w.f64(acc);
        ctx.checkpoint(w.view());
      }
      send_value(ctx, peer, i, static_cast<double>(i + ctx.rank()));
      RecvRequest req = irecv(ctx, peer, i);
      // "Compute" while the halo is in flight.
      volatile double sink = 0;
      for (int k = 0; k < 1000; ++k) sink = sink + k * 1e-9;
      acc += util::from_bytes<double>(req.wait().payload);
      util::coop_sleep_for(std::chrono::microseconds(300));
    }
    // Identical on both ranks' trajectories regardless of the fault.
    double expect = 0;
    for (int i = 0; i < 30; ++i) expect += i + (1 - ctx.rank());
    EXPECT_DOUBLE_EQ(acc, expect);
  });
  EXPECT_EQ(result.total.recoveries, 1u);
}

}  // namespace
}  // namespace windar::mp
