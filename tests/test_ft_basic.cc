// Failure-free integration tests of the recovery layer: applications run on
// windar (all three protocols, both send modes) and must produce exactly the
// raw-transport result, with sane overhead accounting.
#include <gtest/gtest.h>

#include "mp/collectives.h"
#include "util/wait.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

JobConfig config(int n, ProtocolKind proto, SendMode mode,
                 std::uint64_t seed = 1) {
  JobConfig c;
  c.n = n;
  c.protocol = proto;
  c.mode = mode;
  c.latency = net::LatencyModel::turbulent();
  c.seed = seed;
  return c;
}

// Ring: each rank passes an accumulating token around twice.
void ring_app(Ctx& ctx) {
  const int n = ctx.size();
  const int me = ctx.rank();
  const int next = (me + 1) % n;
  const int prev = (me - 1 + n) % n;
  if (n == 1) return;
  for (int round = 0; round < 2; ++round) {
    if (me == 0) {
      send_value(ctx, next, 0, 1000 * round);
      const int token = recv_value<int>(ctx, prev, 0);
      EXPECT_EQ(token, 1000 * round + (n - 1) * (n) / 2);
    } else {
      int token = recv_value<int>(ctx, prev, 0);
      send_value(ctx, next, 0, token + me);
    }
  }
}

class FtMatrix
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, SendMode>> {};

TEST_P(FtMatrix, RingCompletes) {
  auto [proto, mode] = GetParam();
  auto result = run_job(config(4, proto, mode), ring_app);
  EXPECT_EQ(result.total.app_sent, 8u);
  EXPECT_EQ(result.total.app_delivered, 8u);
  EXPECT_EQ(result.total.dup_dropped, 0u);
  EXPECT_EQ(result.total.suppressed_sends, 0u);
  EXPECT_EQ(result.total.recoveries, 0u);
}

TEST_P(FtMatrix, AllReduceMatchesClosedForm) {
  auto [proto, mode] = GetParam();
  run_job(config(6, proto, mode), [](Ctx& ctx) {
    mp::Coll coll(ctx);
    const double contrib[1] = {static_cast<double>(ctx.rank() + 1)};
    auto total = coll.allreduce_sum(contrib);
    EXPECT_DOUBLE_EQ(total[0], 21.0);
  });
}

TEST_P(FtMatrix, AnySourceGathersEverything) {
  auto [proto, mode] = GetParam();
  run_job(config(5, proto, mode), [](Ctx& ctx) {
    if (ctx.rank() == 0) {
      long long sum = 0;
      for (int i = 0; i < 4; ++i) sum += recv_value<int>(ctx);
      EXPECT_EQ(sum, 10);
    } else {
      send_value(ctx, 0, 7, ctx.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FtMatrix,
    ::testing::Combine(::testing::Values(ProtocolKind::kTdi,
                                         ProtocolKind::kTag,
                                         ProtocolKind::kTel),
                       ::testing::Values(SendMode::kBlocking,
                                         SendMode::kNonBlocking)),
    [](const auto& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_" +
             to_string(std::get<1>(param_info.param));
    });

TEST(FtBasic, TdiPiggybackIsExactlyN) {
  for (int n : {2, 4, 8}) {
    auto result = run_job(config(n, ProtocolKind::kTdi, SendMode::kNonBlocking),
                          ring_app);
    EXPECT_DOUBLE_EQ(result.total.avg_piggyback_idents(), n);
  }
}

TEST(FtBasic, TagPiggybackGrowsWithTraffic) {
  auto result = run_job(config(4, ProtocolKind::kTag, SendMode::kNonBlocking),
                        ring_app);
  // The ring is causally chained: later sends carry earlier determinants.
  EXPECT_GT(result.total.piggyback_idents, 0u);
}

TEST(FtBasic, TelLoggerReceivesDeterminants) {
  auto result = run_job(config(4, ProtocolKind::kTel, SendMode::kNonBlocking),
                        [](Ctx& ctx) {
                          ring_app(ctx);
                          // Give the async flush a chance before returning.
                          util::coop_sleep_for(
                              std::chrono::milliseconds(10));
                        });
  EXPECT_GT(result.logger_batches, 0u);
}

TEST(FtBasic, CheckpointAdvanceReleasesLogs) {
  auto result =
      run_job(config(2, ProtocolKind::kTdi, SendMode::kNonBlocking),
              [](Ctx& ctx) {
                const int peer = 1 - ctx.rank();
                for (int i = 0; i < 10; ++i) {
                  send_value(ctx, peer, 0, i);
                  EXPECT_EQ(recv_value<int>(ctx, peer, 0), i);
                }
                ctx.checkpoint({});
                // Wait for the peer's CHECKPOINT_ADVANCE to arrive and GC.
                for (int spin = 0;
                     spin < 200 && ctx.process().log_entries() > 0; ++spin) {
                  util::coop_sleep_for(std::chrono::milliseconds(1));
                }
                EXPECT_EQ(ctx.process().log_entries(), 0u);
              });
  EXPECT_EQ(result.total.checkpoints, 2u);
  EXPECT_EQ(result.total.log_released_entries, 20u);
}

TEST(FtBasic, MetricsSummaryIsPopulated) {
  auto result =
      run_job(config(2, ProtocolKind::kTdi, SendMode::kNonBlocking), ring_app);
  EXPECT_NE(result.total.summary().find("sent="), std::string::npos);
  EXPECT_GT(result.wall_ms, 0.0);
  EXPECT_GT(result.fabric.packets_delivered, 0u);
}

TEST(FtBasic, BlockingModeRecordsSendBlockTime) {
  auto result =
      run_job(config(2, ProtocolKind::kTdi, SendMode::kBlocking), ring_app);
  EXPECT_GT(result.total.send_block_ns, 0);
}

TEST(FtBasic, SingleRankJob) {
  auto result = run_job(config(1, ProtocolKind::kTdi, SendMode::kNonBlocking),
                        [](Ctx& ctx) { EXPECT_EQ(ctx.size(), 1); });
  EXPECT_EQ(result.total.app_sent, 0u);
}

TEST(FtBasic, SelfSendDelivers) {
  run_job(config(2, ProtocolKind::kTdi, SendMode::kNonBlocking), [](Ctx& ctx) {
    send_value(ctx, ctx.rank(), 3, 41 + ctx.rank());
    EXPECT_EQ(recv_value<int>(ctx, ctx.rank(), 3), 41 + ctx.rank());
  });
}

TEST(FtBasic, ApplicationErrorPropagates) {
  EXPECT_THROW(
      run_job(config(2, ProtocolKind::kTdi, SendMode::kNonBlocking),
              [](Ctx& ctx) {
                if (ctx.rank() == 1) throw std::runtime_error("app bug");
                (void)ctx.recv(1, 0);  // would block forever
              }),
      std::runtime_error);
}

}  // namespace
}  // namespace windar::ft
