// Unit tests for determinant records and their wire encoding.
#include <gtest/gtest.h>

#include "windar/determinant.h"

namespace windar::ft {
namespace {

TEST(Determinant, WireRoundTrip) {
  const Determinant d{3, 7, 42, 1001};
  util::ByteWriter w;
  d.write(w);
  EXPECT_EQ(w.size(), 16u);  // 4 identifiers x 4 bytes
  util::ByteReader r(w.view());
  EXPECT_EQ(Determinant::read(r), d);
}

TEST(Determinant, KeyIdentifiesMessageNotDelivery) {
  const Determinant a{1, 2, 3, 10};
  const Determinant b{1, 2, 3, 99};  // same message, different deliver_seq
  EXPECT_EQ(a.key(), b.key());
  const Determinant c{1, 2, 4, 10};
  EXPECT_NE(a.key(), c.key());
  const Determinant d{2, 1, 3, 10};  // swapped sender/receiver
  EXPECT_NE(a.key(), d.key());
}

TEST(Determinant, KeyPacksLargeIndices) {
  const Determinant a{65535, 65535, 0xFFFFFFFFu, 1};
  const Determinant b{65535, 65534, 0xFFFFFFFFu, 1};
  EXPECT_NE(a.key(), b.key());
}

TEST(Determinant, VectorRoundTrip) {
  std::vector<Determinant> ds{{1, 2, 3, 4}, {5, 6, 7, 8}};
  util::ByteWriter w;
  write_determinants(w, ds);
  util::ByteReader r(w.view());
  EXPECT_EQ(read_determinants(r), ds);
  EXPECT_TRUE(r.exhausted());
}

TEST(Determinant, EmptyVectorRoundTrip) {
  util::ByteWriter w;
  write_determinants(w, {});
  util::ByteReader r(w.view());
  EXPECT_TRUE(read_determinants(r).empty());
}

TEST(Determinant, IdentifierCountMatchesPaper) {
  // The paper counts a message's metadata as 4 identifiers (§III.A).
  EXPECT_EQ(kIdentsPerDeterminant, 4u);
}

}  // namespace
}  // namespace windar::ft
