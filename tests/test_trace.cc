// Tests for the causal-event trace recorder and the offline invariant
// validator — including end-to-end traces from real jobs with faults, for
// all three protocols.
#include <gtest/gtest.h>

#include "mp/comm.h"
#include "windar/runtime.h"
#include "windar/trace.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

TraceEvent deliver(int rank, std::uint32_t inc, int peer, SeqNo idx,
                   SeqNo seq, SeqNo dep = 0) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kDeliver;
  e.rank = rank;
  e.incarnation = inc;
  e.peer = peer;
  e.pair_index = idx;
  e.deliver_seq = seq;
  e.depend_self = dep;
  return e;
}

TEST(TraceValidator, AcceptsCleanSequence) {
  std::vector<TraceEvent> tr{
      deliver(0, 0, 1, 1, 1),
      deliver(0, 0, 2, 1, 2),
      deliver(0, 0, 1, 2, 3),
  };
  const auto verdict = validate_trace(tr, 3);
  EXPECT_TRUE(verdict.ok()) << verdict.violations[0];
  EXPECT_EQ(verdict.deliveries_checked, 3u);
}

TEST(TraceValidator, DetectsFifoViolation) {
  std::vector<TraceEvent> tr{
      deliver(0, 0, 1, 2, 1),  // idx 2 before idx 1
  };
  const auto verdict = validate_trace(tr, 2);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.violations[0].find("FIFO"), std::string::npos);
}

TEST(TraceValidator, DetectsDuplicateDelivery) {
  std::vector<TraceEvent> tr{
      deliver(0, 0, 1, 1, 1),
      deliver(0, 0, 1, 1, 2),  // same pair index twice
  };
  EXPECT_FALSE(validate_trace(tr, 2).ok());
}

TEST(TraceValidator, DetectsOrphan) {
  // Delivery #1 claims to depend on 3 prior local deliveries.
  std::vector<TraceEvent> tr{deliver(0, 0, 1, 1, 1, /*dep=*/3)};
  const auto verdict = validate_trace(tr, 2);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.violations[0].find("gate"), std::string::npos);
}

TEST(TraceValidator, DetectsOrderGap) {
  std::vector<TraceEvent> tr{
      deliver(0, 0, 1, 1, 1),
      deliver(0, 0, 1, 2, 3),  // deliver_seq jumps 1 -> 3
  };
  const auto verdict = validate_trace(tr, 2);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.violations[0].find("order"), std::string::npos);
}

TEST(TraceValidator, ContinuityAcrossIncarnation) {
  TraceEvent rec;
  rec.kind = TraceEvent::Kind::kRecover;
  rec.rank = 0;
  rec.incarnation = 1;
  rec.deliver_seq = 2;                // restored delivered_total
  rec.restored_deliver = {0, 2};      // had delivered idx 1..2 from rank 1
  std::vector<TraceEvent> good{rec, deliver(0, 1, 1, 3, 3)};
  EXPECT_TRUE(validate_trace(good, 2).ok());

  std::vector<TraceEvent> bad{rec, deliver(0, 1, 1, 2, 3)};  // repeats idx 2
  EXPECT_FALSE(validate_trace(bad, 2).ok());

  std::vector<TraceEvent> gap{rec, deliver(0, 1, 1, 4, 3)};  // skips idx 3
  EXPECT_FALSE(validate_trace(gap, 2).ok());
}

TEST(TraceValidator, RejectsBadRanks) {
  std::vector<TraceEvent> tr{deliver(7, 0, 1, 1, 1)};
  EXPECT_FALSE(validate_trace(tr, 2).ok());
  std::vector<TraceEvent> tr2{deliver(0, 0, 9, 1, 1)};
  EXPECT_FALSE(validate_trace(tr2, 2).ok());
}

TEST(TraceSinkBasics, RecordSnapshotDumpClear) {
  TraceSink sink;
  sink.record(deliver(0, 0, 1, 1, 1));
  TraceEvent s;
  s.kind = TraceEvent::Kind::kSend;
  s.rank = 1;
  s.peer = 0;
  s.pair_index = 1;
  sink.record(s);
  EXPECT_EQ(sink.size(), 2u);
  const std::string text = sink.dump();
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

// ---- end-to-end: real jobs must produce valid traces ----

class TracedJobs : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TracedJobs, FaultyJobTraceValidates) {
  TraceSink sink;
  JobConfig cfg;
  cfg.n = 4;
  cfg.protocol = GetParam();
  cfg.latency = net::LatencyModel::turbulent();
  cfg.restart_delay_ms = 4;
  cfg.trace = &sink;
  cfg.faults = {{1, 6.0}, {2, 6.0}};  // simultaneous pair failure
  run_job(cfg, [](Ctx& ctx) {
    const int n = ctx.size();
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
    }
    for (int i = start; i < 25; ++i) {
      if (i > 0 && i % 8 == 0) {
        util::ByteWriter w;
        w.i32(i);
        ctx.checkpoint(w.view());
      }
      send_value(ctx, (ctx.rank() + 1) % n, 0, i);
      (void)recv_value<int>(ctx, (ctx.rank() + n - 1) % n, 0);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  const auto verdict = validate_trace(sink.snapshot(), cfg.n);
  EXPECT_TRUE(verdict.ok())
      << verdict.violations[0] << " (of " << verdict.violations.size() << ")";
  EXPECT_GT(verdict.deliveries_checked, 0u);
  EXPECT_GT(verdict.sends_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, TracedJobs,
                         ::testing::Values(ProtocolKind::kTdi,
                                           ProtocolKind::kTag,
                                           ProtocolKind::kTel),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(TracedJobs, TdiGateValuesAreRecorded) {
  // In a causally chained ring, later deliveries must declare non-zero
  // dependencies on the receiver — proves depend_on_receiver plumbing works.
  TraceSink sink;
  JobConfig cfg;
  cfg.n = 3;
  cfg.protocol = ProtocolKind::kTdi;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.trace = &sink;
  run_job(cfg, [](Ctx& ctx) {
    const int n = ctx.size();
    for (int i = 0; i < 6; ++i) {
      send_value(ctx, (ctx.rank() + 1) % n, 0, i);
      (void)recv_value<int>(ctx, (ctx.rank() + n - 1) % n, 0);
    }
  });
  bool nonzero_dep = false;
  for (const auto& e : sink.snapshot()) {
    if (e.kind == TraceEvent::Kind::kDeliver && e.depend_self > 0) {
      nonzero_dep = true;
    }
  }
  EXPECT_TRUE(nonzero_dep);
}

}  // namespace
}  // namespace windar::ft
