// Unit tests for overhead accounting.
#include <gtest/gtest.h>

#include "windar/metrics.h"

namespace windar::ft {
namespace {

TEST(Metrics, AveragesGuardDivisionByZero) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.avg_piggyback_idents(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_track_us(), 0.0);
}

TEST(Metrics, AveragesComputed) {
  Metrics m;
  m.app_sent = 10;
  m.piggyback_idents = 40;
  m.app_delivered = 10;
  m.track_send_ns = 10'000;
  m.track_deliver_ns = 10'000;
  EXPECT_DOUBLE_EQ(m.avg_piggyback_idents(), 4.0);
  EXPECT_DOUBLE_EQ(m.avg_track_us(), 1.0);  // 20 us over 20 events
}

TEST(Metrics, MergeSumsCountersAndMaxesPeaks) {
  Metrics a, b;
  a.app_sent = 1;
  a.log_peak_bytes = 100;
  a.checkpoints = 2;
  b.app_sent = 2;
  b.log_peak_bytes = 50;
  b.recoveries = 1;
  b.send_block_ns = 7;
  a.merge(b);
  EXPECT_EQ(a.app_sent, 3u);
  EXPECT_EQ(a.log_peak_bytes, 100u);  // max, not sum
  EXPECT_EQ(a.checkpoints, 2u);
  EXPECT_EQ(a.recoveries, 1u);
  EXPECT_EQ(a.send_block_ns, 7);
}

TEST(Metrics, MergeIsCommutativeOnCounts) {
  Metrics a, b;
  a.app_sent = 3;
  a.dup_dropped = 1;
  b.app_sent = 4;
  b.dup_dropped = 2;
  Metrics ab = a;
  ab.merge(b);
  Metrics ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.app_sent, ba.app_sent);
  EXPECT_EQ(ab.dup_dropped, ba.dup_dropped);
}

TEST(Metrics, SummaryContainsKeyFields) {
  Metrics m;
  m.app_sent = 5;
  m.recoveries = 2;
  const std::string s = m.summary();
  EXPECT_NE(s.find("sent=5"), std::string::npos);
  EXPECT_NE(s.find("recov=2"), std::string::npos);
}

}  // namespace
}  // namespace windar::ft
