// NPB skeleton tests: checksum determinism on the raw transport, exact
// checksum equality on every protocol / send mode, and under fault injection
// — the end-to-end correctness oracle for the whole recovery stack.
#include <gtest/gtest.h>

#include <atomic>

#include "mp/runtime.h"
#include "npb/driver.h"

namespace windar::npb {
namespace {

Params tiny(App app, double scale = 0.25) {
  Params p = make_params(app, 4, scale);
  p.checkpoint_every = 3;
  return p;
}

double run_raw_checksum(App app, int n, std::uint64_t seed) {
  Params p = tiny(app);
  auto sum = std::make_shared<std::atomic<double>>(0.0);
  mp::run_raw(
      n,
      [&](mp::Comm& c) {
        const double cs = run_app(c, p, nullptr);
        if (c.rank() == 0) sum->store(cs);
      },
      net::LatencyModel::turbulent(), seed);
  return sum->load();
}

double run_ft_checksum(App app, int n, ft::ProtocolKind proto,
                       ft::SendMode mode, std::vector<ft::FaultEvent> faults,
                       std::uint64_t seed,
                       std::uint64_t* recoveries_out = nullptr) {
  Params p = tiny(app);
  ft::JobConfig cfg;
  cfg.n = n;
  cfg.protocol = proto;
  cfg.mode = mode;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.seed = seed;
  cfg.faults = std::move(faults);
  cfg.restart_delay_ms = 5;
  auto sum = std::make_shared<std::atomic<double>>(0.0);
  auto result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
    const double cs = run_app(ctx, p, &ctx);
    if (ctx.rank() == 0) sum->store(cs);
  });
  if (recoveries_out) *recoveries_out = result.total.recoveries;
  return sum->load();
}

class NpbApps : public ::testing::TestWithParam<App> {};

TEST_P(NpbApps, RawChecksumIsSeedIndependent) {
  // The result must not depend on network timing: deterministic programs.
  const double a = run_raw_checksum(GetParam(), 4, 1);
  const double b = run_raw_checksum(GetParam(), 4, 99);
  EXPECT_EQ(a, b);
}

TEST_P(NpbApps, FtMatchesRawOnAllProtocols) {
  const App app = GetParam();
  const double expected = run_raw_checksum(app, 4, 1);
  for (auto proto : {ft::ProtocolKind::kTdi, ft::ProtocolKind::kTag,
                     ft::ProtocolKind::kTel}) {
    EXPECT_EQ(expected,
              run_ft_checksum(app, 4, proto, ft::SendMode::kNonBlocking, {}, 3))
        << to_string(proto);
  }
}

TEST_P(NpbApps, BlockingModeSameChecksum) {
  const App app = GetParam();
  const double expected = run_raw_checksum(app, 4, 1);
  EXPECT_EQ(expected, run_ft_checksum(app, 4, ft::ProtocolKind::kTdi,
                                      ft::SendMode::kBlocking, {}, 5));
}

TEST_P(NpbApps, RecoversFromMidRunFault) {
  const App app = GetParam();
  const double expected = run_raw_checksum(app, 4, 1);
  // The scaled apps take ~10-20 ms; try successively earlier fault times
  // until one actually lands mid-run, so the test cannot pass vacuously.
  std::uint64_t recoveries = 0;
  for (double at_ms : {4.0, 2.0, 1.0, 0.5}) {
    const double got = run_ft_checksum(app, 4, ft::ProtocolKind::kTdi,
                                       ft::SendMode::kNonBlocking,
                                       {{2, at_ms}}, 7, &recoveries);
    ASSERT_EQ(expected, got) << "fault at " << at_ms << "ms";
    if (recoveries >= 1) break;
  }
  EXPECT_GE(recoveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(Apps, NpbApps,
                         ::testing::Values(App::kLU, App::kBT, App::kSP, App::kCG,
                                           App::kMG),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(Npb, ScalesAcrossRankCounts) {
  for (int n : {1, 2, 4, 8}) {
    const double cs = run_raw_checksum(App::kLU, n, 1);
    EXPECT_GT(cs, 0.0) << "n=" << n;
  }
}

TEST(Npb, ChecksumIndependentOfDecomposition) {
  // The skeletons are relaxations whose result depends on the decomposition
  // only through boundary-condition placement, so checksums differ across n;
  // what must hold is per-n determinism.
  const double a = run_raw_checksum(App::kSP, 2, 1);
  const double b = run_raw_checksum(App::kSP, 2, 42);
  EXPECT_EQ(a, b);
}

TEST(Npb, ParamsMatchPaperProfiles) {
  const Params lu = make_params(App::kLU, 16);
  const Params bt = make_params(App::kBT, 16);
  const Params sp = make_params(App::kSP, 16);
  // LU: most iterations (message frequency), 1 component (small messages).
  EXPECT_GT(lu.iterations, bt.iterations);
  EXPECT_LT(lu.components, bt.components);
  // BT: largest per-message faces and checkpoint (most cells * components).
  EXPECT_GT(bt.nx * bt.ny * bt.nz * bt.components,
            sp.nx * sp.ny * sp.nz * sp.components);
  EXPECT_GT(sp.components, lu.components);
}

TEST(Npb, ScaleShrinksIterations) {
  EXPECT_LT(make_params(App::kLU, 4, 0.2).iterations,
            make_params(App::kLU, 4, 1.0).iterations);
  EXPECT_GE(make_params(App::kLU, 4, 0.01).iterations, 2);
}

}  // namespace
}  // namespace windar::npb
