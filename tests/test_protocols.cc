// Unit tests for the three dependency-tracking protocols in isolation:
// piggyback construction, merge semantics, delivery gates, replay, GC, and
// checkpoint round-trips.  These drive the LoggingProtocol interface directly
// (no fabric), reproducing the paper's Fig. 1 / Fig. 2 scenarios.
#include <gtest/gtest.h>

#include "windar/pes_protocol.h"
#include "windar/tag_protocol.h"
#include "windar/tdi_protocol.h"
#include "windar/tel_protocol.h"

namespace windar::ft {
namespace {

QueuedMsg queued(int src, SeqNo idx, util::Bytes meta) {
  QueuedMsg m;
  m.src = src;
  m.send_index = idx;
  m.meta = std::move(meta);
  return m;
}

// ---------------------------------------------------------------------------
// TDI
// ---------------------------------------------------------------------------

TEST(Tdi, PiggybackIsVectorOfN) {
  TdiProtocol p(0, 4);
  Piggyback pb = p.on_send(1, 1);
  EXPECT_EQ(pb.idents, 4u);
  util::ByteReader r(pb.blob);
  EXPECT_EQ(r.u32_vec(), (std::vector<SeqNo>{0, 0, 0, 0}));
}

TEST(Tdi, DeliverAdvancesOwnIntervalAndMerges) {
  TdiProtocol receiver(1, 4);
  // Sender 2 has delivered 3 messages and transitively depends on P3's 2nd
  // interval.
  TdiProtocol sender(2, 4);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0, 3, 2});
  receiver.on_deliver(2, 1, /*deliver_seq=*/1, w.view());
  EXPECT_EQ(receiver.depend_interval(), (std::vector<SeqNo>{0, 1, 3, 2}));
}

TEST(Tdi, MergeIsElementwiseMax) {
  TdiProtocol p(0, 3);
  util::ByteWriter w1;
  w1.u32_vec(std::vector<SeqNo>{0, 5, 1});
  p.on_deliver(1, 1, 1, w1.view());
  util::ByteWriter w2;
  w2.u32_vec(std::vector<SeqNo>{0, 3, 4});
  p.on_deliver(2, 1, 2, w2.view());
  EXPECT_EQ(p.depend_interval(), (std::vector<SeqNo>{2, 5, 4}));
}

TEST(Tdi, GateBlocksUntilEnoughDeliveries) {
  // Paper §III.A: m5 depends on 2 prior deliveries at P1; m0/m2 depend on 0.
  TdiProtocol p(1, 4);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 2, 2, 1});  // m5's piggyback
  QueuedMsg m5 = queued(2, 1, w.take());
  EXPECT_FALSE(p.deliverable(m5, /*delivered_total=*/0));
  EXPECT_FALSE(p.deliverable(m5, 1));
  EXPECT_TRUE(p.deliverable(m5, 2));

  util::ByteWriter w0;
  w0.u32_vec(std::vector<SeqNo>{0, 0, 0, 0});  // m0/m2: no dependency on P1
  QueuedMsg m0 = queued(0, 1, w0.take());
  EXPECT_TRUE(p.deliverable(m0, 0));  // deliverable immediately, any order
}

TEST(Tdi, SaveRestoreRoundTrip) {
  TdiProtocol p(0, 3);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 7, 2});
  p.on_deliver(1, 1, 1, w.view());
  util::ByteWriter saved;
  p.save(saved);
  TdiProtocol q(0, 3);
  util::ByteReader r(saved.view());
  q.restore(r);
  EXPECT_EQ(q.depend_interval(), p.depend_interval());
}

TEST(Tdi, PiggybackedElementReadsWithoutFullParse) {
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{10, 20, 30});
  EXPECT_EQ(TdiProtocol::piggybacked_element(w.view(), 0), 10u);
  EXPECT_EQ(TdiProtocol::piggybacked_element(w.view(), 2), 30u);
}

TEST(Tdi, NoGatherNeeded) {
  TdiProtocol p(0, 2);
  EXPECT_FALSE(p.needs_determinant_gather());
  EXPECT_FALSE(p.uses_event_logger());
}

// ---------------------------------------------------------------------------
// TDI sparse encoding (extension)
// ---------------------------------------------------------------------------

TEST(TdiSparse, EmptyVectorPiggybacksNothing) {
  TdiProtocol p(0, 8, TdiProtocol::Encoding::kSparse);
  Piggyback pb = p.on_send(1, 1);
  EXPECT_EQ(pb.idents, 0u);  // all-zero vector: zero pairs
  EXPECT_EQ(pb.blob.size(), 4u);
}

TEST(TdiSparse, OneIdentifierPerTrackedEntry) {
  TdiProtocol p(1, 8, TdiProtocol::Encoding::kSparse);
  TdiProtocol sender(2, 8, TdiProtocol::Encoding::kSparse);
  // Make sender's vector have 2 non-zero entries, then learn it.
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0, 3, 0, 1, 0, 0, 0});
  p.on_deliver(2, 1, 1, w.view());
  // p now tracks entries for self(1), 2 and 4 -> 3 identifiers, matching
  // the dense path's one-ident-per-entry accounting (the pair's index half
  // is encoding overhead, counted in bytes, not idents).
  EXPECT_EQ(p.on_send(3, 1).idents, 3u);
}

TEST(TdiSparse, DenseAndSparseDecodeIdentically) {
  TdiProtocol dense(0, 6, TdiProtocol::Encoding::kDense);
  TdiProtocol sparse(0, 6, TdiProtocol::Encoding::kSparse);
  // Drive both through identical deliveries.
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 4, 0, 0, 0, 0});
  dense.on_deliver(1, 1, 1, w.view());
  sparse.on_deliver(1, 1, 1, w.view());
  EXPECT_EQ(dense.depend_interval(), sparse.depend_interval());
  // Their piggybacks decode to the same dense vector.
  const auto pd = dense.on_send(2, 1);
  const auto ps = sparse.on_send(2, 1);
  EXPECT_EQ(TdiProtocol::decode(pd.blob, 6), TdiProtocol::decode(ps.blob, 6));
  EXPECT_LT(ps.blob.size(), pd.blob.size());  // sparse wins here
}

TEST(TdiSparse, PiggybackedElementFindsSparseEntries) {
  TdiProtocol sparse(2, 5, TdiProtocol::Encoding::kSparse);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 7, 0, 0, 3});
  sparse.on_deliver(1, 1, 1, w.view());
  const auto pb = sparse.on_send(0, 1);
  EXPECT_EQ(TdiProtocol::piggybacked_element(pb.blob, 1), 7u);
  EXPECT_EQ(TdiProtocol::piggybacked_element(pb.blob, 2), 1u);  // self seq
  EXPECT_EQ(TdiProtocol::piggybacked_element(pb.blob, 3), 0u);  // absent
  EXPECT_EQ(TdiProtocol::piggybacked_element(pb.blob, 4), 3u);
}

TEST(TdiSparse, GateWorksAcrossEncodings) {
  TdiProtocol receiver(1, 4, TdiProtocol::Encoding::kSparse);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 2, 0, 0});
  QueuedMsg m = queued(2, 1, w.take());
  EXPECT_FALSE(receiver.deliverable(m, 1));
  EXPECT_TRUE(receiver.deliverable(m, 2));
}

TEST(TdiSparse, FactoryProducesSparseKind) {
  auto p = make_protocol(ProtocolKind::kTdiSparse, 0, 3);
  EXPECT_EQ(p->kind(), ProtocolKind::kTdiSparse);
}

// ---------------------------------------------------------------------------
// TAG
// ---------------------------------------------------------------------------

TEST(Tag, FirstSendCarriesNothing) {
  TagProtocol p(0, 4);
  Piggyback pb = p.on_send(1, 1);
  EXPECT_EQ(pb.idents, 0u);  // no determinants known yet
}

TEST(Tag, DeliveryCreatesDeterminantThenPiggybacks) {
  TagProtocol p(1, 4);
  // Deliver a message from 0 carrying no determinants.
  util::ByteWriter empty;
  empty.u32(0);
  p.on_deliver(0, 1, 1, empty.view());
  EXPECT_EQ(p.tracked_entries(), 1u);
  // Next send to 2 piggybacks our new determinant (4 identifiers).
  Piggyback pb = p.on_send(2, 1);
  EXPECT_EQ(pb.idents, kIdentsPerDeterminant);
  // A second send to the same destination carries nothing new (incremental).
  Piggyback pb2 = p.on_send(2, 2);
  EXPECT_EQ(pb2.idents, 0u);
  // But a send to a different destination still carries it.
  Piggyback pb3 = p.on_send(3, 1);
  EXPECT_EQ(pb3.idents, kIdentsPerDeterminant);
}

TEST(Tag, LearnedDeterminantsPropagateTransitively) {
  TagProtocol p1(1, 4);
  util::ByteWriter e;
  e.u32(0);
  p1.on_deliver(0, 1, 1, e.view());
  Piggyback to2 = p1.on_send(2, 1);

  TagProtocol p2(2, 4);
  p2.on_deliver(1, 1, 1, to2.blob);
  // p2 now holds p1's delivery determinant AND created its own: a send to 3
  // carries both.
  Piggyback to3 = p2.on_send(3, 1);
  EXPECT_EQ(to3.idents, 2 * kIdentsPerDeterminant);
}

TEST(Tag, DeliveryFromPeerMarksPeerAsKnowing) {
  TagProtocol p2(2, 4);
  // p2 receives a determinant FROM rank 1; it must not echo it back to 1.
  util::ByteWriter w;
  w.u32(1);
  Determinant d{0, 1, 1, 1};
  d.write(w);
  p2.on_deliver(1, 1, 1, w.view());
  Piggyback back_to_1 = p2.on_send(1, 1);
  // Only p2's own new delivery determinant goes back, not d.
  EXPECT_EQ(back_to_1.idents, kIdentsPerDeterminant);
}

TEST(Tag, ReplayGateEnforcesRecordedOrder) {
  TagProtocol p(1, 4);
  p.begin_replay(/*delivered_total=*/0);
  const Determinant d1{0, 1, 1, 1};  // (src 0, idx 1) was delivery #1
  const Determinant d2{2, 1, 1, 2};  // (src 2, idx 1) was delivery #2
  std::vector<Determinant> ds{d2, d1};
  p.add_replay_determinants(ds);
  EXPECT_TRUE(p.replay_active());

  util::ByteWriter empty;
  empty.u32(0);
  QueuedMsg from2 = queued(2, 1, empty.view());
  QueuedMsg from0 = queued(0, 1, empty.view());
  // Even if the message from 2 arrives first, it must wait for delivery #1.
  EXPECT_FALSE(p.deliverable(from2, 0));
  EXPECT_TRUE(p.deliverable(from0, 0));
  p.on_deliver(0, 1, 1, empty.view());
  EXPECT_TRUE(p.deliverable(from2, 1));
  p.on_deliver(2, 1, 2, empty.view());
  EXPECT_FALSE(p.replay_active());  // history fully replayed
}

TEST(Tag, UnrecordedDeliveriesWaitForRecordedOnes) {
  TagProtocol p(1, 4);
  p.begin_replay(0);
  const Determinant d{0, 1, 1, 1};
  std::vector<Determinant> ds{d};
  p.add_replay_determinants(ds);
  util::ByteWriter empty;
  empty.u32(0);
  // (src 3, idx 1) has no determinant: deliverable only after all recorded.
  QueuedMsg unrecorded = queued(3, 1, empty.view());
  EXPECT_FALSE(p.deliverable(unrecorded, 0));
  p.on_deliver(0, 1, 1, empty.view());
  EXPECT_TRUE(p.deliverable(unrecorded, 1));
}

TEST(Tag, DeterminantsForPeerFiltersByReceiver) {
  TagProtocol p(0, 4);
  util::ByteWriter w;
  w.u32(2);
  Determinant a{1, 2, 1, 1};
  Determinant b{1, 3, 1, 1};
  a.write(w);
  b.write(w);
  p.on_deliver(1, 1, 1, w.view());
  auto for2 = p.determinants_for(2);
  ASSERT_EQ(for2.size(), 1u);
  EXPECT_EQ(for2[0], a);
  // Our own delivery determinant has receiver 0.
  EXPECT_EQ(p.determinants_for(0).size(), 1u);
}

TEST(Tag, PeerCheckpointReleasesDeterminants) {
  TagProtocol p(0, 4);
  util::ByteWriter w;
  w.u32(2);
  Determinant a{1, 2, 1, 1};  // peer 2's delivery #1
  Determinant b{1, 2, 2, 5};  // peer 2's delivery #5
  a.write(w);
  b.write(w);
  p.on_deliver(1, 1, 1, w.view());
  EXPECT_EQ(p.tracked_entries(), 3u);  // a, b, own
  p.on_peer_checkpoint(2, 3);          // releases a (seq 1 <= 3), keeps b
  EXPECT_EQ(p.tracked_entries(), 2u);
  EXPECT_EQ(p.determinants_for(2).size(), 1u);
}

TEST(Tag, SaveRestorePreservesKnowledge) {
  TagProtocol p(1, 4);
  util::ByteWriter empty;
  empty.u32(0);
  p.on_deliver(0, 1, 1, empty.view());
  (void)p.on_send(2, 1);  // marks det as known by 2
  util::ByteWriter saved;
  p.save(saved);

  TagProtocol q(1, 4);
  util::ByteReader r(saved.view());
  q.restore(r);
  EXPECT_EQ(q.tracked_entries(), 1u);
  // Restored knowledge: still nothing new for 2, but 3 gets it.
  EXPECT_EQ(q.on_send(2, 2).idents, 0u);
  EXPECT_EQ(q.on_send(3, 1).idents, kIdentsPerDeterminant);
}

TEST(Tag, KnowledgeMaskScalesPastSixtyFourRanks) {
  // The seed kept per-determinant knowledge in one u64 and CHECK-failed any
  // job wider than 64 ranks; the dynamic bitset lifts that.  Exercise ranks
  // on both sides of the word boundary, incremental suppression, the
  // no-echo rule, and save/restore of the high words.
  TagProtocol p(70, 100);
  util::ByteWriter empty;
  empty.u32(0);
  p.on_deliver(65, 1, 1, empty.view());
  EXPECT_EQ(p.tracked_entries(), 1u);
  EXPECT_EQ(p.on_send(80, 1).idents, kIdentsPerDeterminant);
  EXPECT_EQ(p.on_send(80, 2).idents, 0u);  // incremental above rank 64
  EXPECT_EQ(p.on_send(3, 1).idents, kIdentsPerDeterminant);  // low rank too

  // A determinant learned FROM rank 90 is never echoed back to 90.
  util::ByteWriter w;
  w.u32(1);
  Determinant d{88, 90, 1, 1};
  d.write(w);
  p.on_deliver(90, 1, 2, w.view());
  // d is already known by 90 (it sent it); the first det and this
  // delivery's own det are news.
  EXPECT_EQ(p.on_send(90, 1).idents, 2 * kIdentsPerDeterminant);

  util::ByteWriter saved;
  p.save(saved);
  TagProtocol q(70, 100);
  util::ByteReader r(saved.view());
  q.restore(r);
  EXPECT_EQ(q.tracked_entries(), 3u);
  // 80 already knows the first det; d and the second own det are new to it.
  EXPECT_EQ(q.on_send(80, 3).idents, 2 * kIdentsPerDeterminant);
  EXPECT_EQ(q.on_send(95, 1).idents, 3 * kIdentsPerDeterminant);
}

// ---------------------------------------------------------------------------
// TEL
// ---------------------------------------------------------------------------

TEST(Tel, PiggybackIncludesWatermarkVector) {
  TelProtocol p(0, 4);
  Piggyback pb = p.on_send(1, 1);
  EXPECT_EQ(pb.idents, 4u);  // n watermarks, no determinants yet
}

TEST(Tel, UnstableDeterminantsTravelUntilAck) {
  TelProtocol p(1, 4);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0, 0, 0});
  w.u32(0);
  p.on_deliver(0, 1, 1, w.view());
  // Determinant unstable: piggybacked.
  EXPECT_EQ(p.on_send(2, 1).idents, 4u + kIdentsPerDeterminant);
  // Logger acks stability; piggyback shrinks back to the watermark vector.
  p.on_logger_ack(1);
  EXPECT_EQ(p.on_send(2, 2).idents, 4u);
  EXPECT_EQ(p.tracked_entries(), 0u);
}

TEST(Tel, TakeUnloggedDrainsOnce) {
  TelProtocol p(1, 4);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0, 0, 0});
  w.u32(0);
  p.on_deliver(0, 1, 1, w.view());
  p.on_deliver(0, 2, 2, w.view());
  auto batch = p.take_unlogged(10);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(p.take_unlogged(10).empty());  // already flushed
  p.on_deliver(0, 3, 3, w.view());
  EXPECT_EQ(p.take_unlogged(10).size(), 1u);  // only the new one
}

TEST(Tel, TakeUnloggedRespectsBatchLimit) {
  TelProtocol p(0, 2);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0});
  w.u32(0);
  for (SeqNo i = 1; i <= 5; ++i) p.on_deliver(1, i, i, w.view());
  EXPECT_EQ(p.take_unlogged(3).size(), 3u);
  EXPECT_EQ(p.take_unlogged(3).size(), 2u);
}

TEST(Tel, WatermarkVectorPropagatesStability) {
  // p0 learns via piggyback that p1's determinants up to 5 are stable and
  // drops its copies.
  TelProtocol p0(0, 3);
  util::ByteWriter carry;
  carry.u32_vec(std::vector<SeqNo>{0, 0, 0});
  carry.u32(1);
  Determinant d{2, 1, 1, 4};  // p1's delivery #4
  d.write(carry);
  p0.on_deliver(1, 1, 1, carry.view());
  EXPECT_EQ(p0.determinants_for(1).size(), 1u);

  util::ByteWriter stable;
  stable.u32_vec(std::vector<SeqNo>{0, 5, 0});  // p1 stable up to 5
  stable.u32(0);
  p0.on_deliver(2, 1, 2, stable.view());
  EXPECT_TRUE(p0.determinants_for(1).empty());
  EXPECT_EQ(p0.stable_watermark(1), 5u);
}

TEST(Tel, ReplayGateSameAsTag) {
  TelProtocol p(1, 3);
  p.begin_replay(0);
  const Determinant d{0, 1, 1, 1};
  std::vector<Determinant> ds{d};
  p.add_replay_determinants(ds);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0, 0});
  w.u32(0);
  QueuedMsg recorded = queued(0, 1, w.view());
  QueuedMsg other = queued(2, 1, w.view());
  EXPECT_TRUE(p.deliverable(recorded, 0));
  EXPECT_FALSE(p.deliverable(other, 0));
}

TEST(Tel, SaveRestoreRoundTrip) {
  TelProtocol p(1, 3);
  util::ByteWriter w;
  w.u32_vec(std::vector<SeqNo>{0, 0, 0});
  w.u32(0);
  p.on_deliver(0, 1, 1, w.view());
  p.on_logger_ack(0);  // no-op, keeps det unstable
  util::ByteWriter saved;
  p.save(saved);
  TelProtocol q(1, 3);
  util::ByteReader r(saved.view());
  q.restore(r);
  EXPECT_EQ(q.tracked_entries(), 1u);
  EXPECT_EQ(q.determinants_for(1).size(), 1u);
}

TEST(Tel, UsesEventLogger) {
  TelProtocol p(0, 2);
  EXPECT_TRUE(p.uses_event_logger());
  EXPECT_TRUE(p.needs_determinant_gather());
}

// ---------------------------------------------------------------------------
// PES (pessimistic synchronous logging baseline)
// ---------------------------------------------------------------------------

TEST(Pes, PiggybacksNothing) {
  PesProtocol p(0, 8);
  EXPECT_EQ(p.on_send(1, 1).idents, 0u);
  EXPECT_TRUE(p.on_send(2, 1).blob.empty());
}

TEST(Pes, DeliveryHeldUntilStable) {
  PesProtocol p(1, 4);
  EXPECT_TRUE(p.pessimistic());
  p.on_deliver(0, 1, 1, {});
  EXPECT_FALSE(p.stable_upto(1));
  auto batch = p.take_unlogged(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].deliver_seq, 1u);
  p.on_logger_ack(1);
  EXPECT_TRUE(p.stable_upto(1));
  EXPECT_EQ(p.tracked_entries(), 0u);  // pending drained
}

TEST(Pes, SaveRestoreRoundTrip) {
  PesProtocol p(1, 4);
  p.on_deliver(0, 1, 1, {});
  p.on_deliver(2, 1, 2, {});
  p.on_logger_ack(1);
  util::ByteWriter saved;
  p.save(saved);
  PesProtocol q(1, 4);
  util::ByteReader r(saved.view());
  q.restore(r);
  EXPECT_TRUE(q.stable_upto(1));
  EXPECT_FALSE(q.stable_upto(2));
  EXPECT_EQ(q.tracked_entries(), 1u);
}

TEST(Pes, ReplayGateSameAsOtherPwdProtocols) {
  PesProtocol p(1, 3);
  p.begin_replay(0);
  const Determinant d{0, 1, 1, 1};
  std::vector<Determinant> ds{d};
  p.add_replay_determinants(ds);
  QueuedMsg recorded = queued(0, 1, {});
  QueuedMsg other = queued(2, 1, {});
  EXPECT_TRUE(p.deliverable(recorded, 0));
  EXPECT_FALSE(p.deliverable(other, 0));
}

// ---------------------------------------------------------------------------
// cross-protocol: factory
// ---------------------------------------------------------------------------

TEST(Factory, MakesAllKinds) {
  EXPECT_EQ(make_protocol(ProtocolKind::kTdi, 0, 2)->kind(), ProtocolKind::kTdi);
  EXPECT_EQ(make_protocol(ProtocolKind::kTag, 0, 2)->kind(), ProtocolKind::kTag);
  EXPECT_EQ(make_protocol(ProtocolKind::kTel, 0, 2)->kind(), ProtocolKind::kTel);
  EXPECT_EQ(make_protocol(ProtocolKind::kTdiSparse, 0, 2)->kind(),
            ProtocolKind::kTdiSparse);
  EXPECT_EQ(make_protocol(ProtocolKind::kPes, 0, 2)->kind(),
            ProtocolKind::kPes);
}

}  // namespace
}  // namespace windar::ft
