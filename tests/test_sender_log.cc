// Tests for the sender-based message log.
#include <gtest/gtest.h>

#include "windar/sender_log.h"

namespace windar::ft {
namespace {

LogEntry entry(SeqNo idx, std::size_t payload = 4) {
  LogEntry e;
  e.send_index = idx;
  e.tag = 1;
  e.meta = {1, 2};
  e.payload = util::Buffer(util::Bytes(payload, 0xEE));
  return e;
}

TEST(SenderLog, AppendAndIterate) {
  SenderLog log(3);
  log.append(1, entry(1));
  log.append(1, entry(2));
  log.append(2, entry(1));
  EXPECT_EQ(log.entries(), 3u);
  EXPECT_EQ(log.entries_for(1), 2u);
  std::vector<SeqNo> seen;
  log.for_each_from(1, 0, [&](const LogEntry& e) { seen.push_back(e.send_index); });
  EXPECT_EQ(seen, (std::vector<SeqNo>{1, 2}));
}

TEST(SenderLog, ForEachFromSkipsPrefix) {
  SenderLog log(2);
  for (SeqNo i = 1; i <= 5; ++i) log.append(0, entry(i));
  std::vector<SeqNo> seen;
  log.for_each_from(0, 3, [&](const LogEntry& e) { seen.push_back(e.send_index); });
  EXPECT_EQ(seen, (std::vector<SeqNo>{4, 5}));
}

TEST(SenderLog, ReleaseUpto) {
  SenderLog log(2);
  for (SeqNo i = 1; i <= 5; ++i) log.append(1, entry(i));
  const std::size_t before = log.bytes();
  EXPECT_EQ(log.release_upto(1, 3), 3u);
  EXPECT_EQ(log.entries(), 2u);
  EXPECT_LT(log.bytes(), before);
  // Releasing again is a no-op.
  EXPECT_EQ(log.release_upto(1, 3), 0u);
  // Release everything.
  EXPECT_EQ(log.release_upto(1, 100), 2u);
  EXPECT_EQ(log.entries(), 0u);
  EXPECT_EQ(log.bytes(), 0u);
}

TEST(SenderLog, NonContiguousIndicesAfterRelease) {
  SenderLog log(1);
  log.append(0, entry(1));
  log.append(0, entry(2));
  log.release_upto(0, 2);
  log.append(0, entry(3));  // indices keep increasing after release
  EXPECT_EQ(log.entries(), 1u);
}

TEST(SenderLog, RejectsNonIncreasingIndices) {
  SenderLog log(1);
  log.append(0, entry(2));
  EXPECT_DEATH(log.append(0, entry(2)), "increase");
}

TEST(SenderLog, SaveRestoreRoundTrip) {
  SenderLog log(3);
  log.append(0, entry(1, 10));
  log.append(2, entry(1, 20));
  log.append(2, entry(2, 30));
  util::ByteWriter w;
  log.save(w);
  const util::Bytes blob = w.take();

  SenderLog copy(3);
  util::ByteReader r(blob);
  copy.restore(r);
  EXPECT_EQ(copy.entries(), 3u);
  EXPECT_EQ(copy.bytes(), log.bytes());
  std::vector<std::size_t> sizes;
  copy.for_each_from(2, 0, [&](const LogEntry& e) { sizes.push_back(e.payload.size()); });
  EXPECT_EQ(sizes, (std::vector<std::size_t>{20, 30}));
}

TEST(SenderLog, RestoreRejectsWidthMismatch) {
  // A checkpoint blob taken at a different job width (truncated or foreign)
  // must panic instead of silently resizing per_dst_: later append() /
  // release_upto() calls would index out of range.
  SenderLog log(4);
  util::ByteWriter w;
  log.save(w);
  const util::Bytes blob = w.take();

  SenderLog narrower(3);
  util::ByteReader r(blob);
  EXPECT_DEATH(narrower.restore(r), "width mismatch");
}

TEST(SenderLog, ClearResets) {
  SenderLog log(2);
  log.append(0, entry(1));
  log.clear();
  EXPECT_EQ(log.entries(), 0u);
  EXPECT_EQ(log.bytes(), 0u);
  log.append(0, entry(1));  // indices restart after clear
  EXPECT_EQ(log.entries(), 1u);
}

TEST(SenderLog, BytesAccountsMetaAndPayload) {
  SenderLog log(1);
  const std::size_t empty = log.bytes();
  log.append(0, entry(1, 100));
  EXPECT_GE(log.bytes() - empty, 100u);
}

TEST(SenderLog, AppendReturnsRunningTotals) {
  // The Totals return is what lets the send path book peak-log metrics
  // without a second lock round-trip; it must match the accessors exactly.
  SenderLog log(2);
  for (SeqNo i = 1; i <= 10; ++i) {
    const SenderLog::Totals t = log.append(1, entry(i, 8));
    EXPECT_EQ(t.entries, log.entries());
    EXPECT_EQ(t.bytes, log.bytes());
    EXPECT_EQ(t.entries, static_cast<std::size_t>(i));
  }
}

TEST(SenderLog, ChunkedStorageRecyclesReleasedChunks) {
  // Steady state: append a few chunks' worth, release them, append again —
  // the second wave must reuse the first wave's chunks, not allocate.
  SenderLog log(2);
  constexpr std::size_t kWave = 100;  // > 3 chunks at 32 entries/chunk
  for (SeqNo i = 1; i <= kWave; ++i) log.append(1, entry(i));
  const std::size_t created_wave1 = log.chunks_created();
  EXPECT_GE(created_wave1, kWave / 32);
  log.release_upto(1, kWave);
  EXPECT_EQ(log.entries(), 0u);
  EXPECT_GT(log.chunks_free(), 0u);
  for (SeqNo i = kWave + 1; i <= 2 * kWave; ++i) log.append(1, entry(i));
  EXPECT_EQ(log.chunks_created(), created_wave1);
  EXPECT_GT(log.chunks_recycled(), 0u);
}

TEST(SenderLog, PartialReleaseKeepsChunkWindowCorrect) {
  // Releasing into the middle of a chunk advances its live window without
  // recycling it; iteration and counts must see exactly the survivors.
  SenderLog log(1);
  for (SeqNo i = 1; i <= 40; ++i) log.append(0, entry(i));
  EXPECT_EQ(log.release_upto(0, 35), 35u);  // chunk 0 gone, chunk 1 partial
  EXPECT_EQ(log.entries(), 5u);
  std::vector<SeqNo> seen;
  log.for_each_from(0, 0, [&](const LogEntry& e) { seen.push_back(e.send_index); });
  EXPECT_EQ(seen, (std::vector<SeqNo>{36, 37, 38, 39, 40}));
}

TEST(SenderLog, SaveRestoreRoundTripAcrossChunkBoundaries) {
  // 100 entries per destination spans several 32-entry chunks and a partial
  // tail; the checkpoint blob must round-trip every entry byte-identically.
  SenderLog log(2);
  for (SeqNo i = 1; i <= 100; ++i) {
    log.append(0, entry(i, static_cast<std::size_t>(i % 7) + 1));
    log.append(1, entry(i, static_cast<std::size_t>(i % 5) + 1));
  }
  log.release_upto(0, 50);  // a released prefix must not resurrect
  util::ByteWriter w;
  log.save(w);
  const util::Bytes blob = w.take();

  SenderLog copy(2);
  util::ByteReader r(blob);
  copy.restore(r);
  EXPECT_EQ(copy.entries(), log.entries());
  EXPECT_EQ(copy.bytes(), log.bytes());
  std::vector<SeqNo> seen;
  copy.for_each_from(0, 0, [&](const LogEntry& e) { seen.push_back(e.send_index); });
  ASSERT_EQ(seen.size(), 50u);
  EXPECT_EQ(seen.front(), 51u);
  EXPECT_EQ(seen.back(), 100u);
  std::size_t n1 = 0;
  copy.for_each_from(1, 0, [&](const LogEntry& e) {
    ++n1;
    EXPECT_EQ(e.payload.size(), static_cast<std::size_t>(e.send_index % 5) + 1);
  });
  EXPECT_EQ(n1, 100u);
}

}  // namespace
}  // namespace windar::ft
