// TDI delta encoding (Encoding::kDelta): per-channel change tracking, codec
// interop with the dense and sparse forms, and the restore()-driven resync
// that keeps rollback from ever delivering on a stale delta base.
//
// The correctness argument under test: per-pair FIFO delivery means that
// after k messages on a channel the receiver has merged every entry any of
// those k blobs carried, and entries are monotone between restores — so a
// blob carrying only the entries that changed since the previous send on the
// channel merges to the same state as the full vector.  restore() is the one
// point where entries can move backwards; it must invalidate every channel
// base so the next send is a full resync.
#include <gtest/gtest.h>

#include "chaos_app.h"
#include "windar/tdi_protocol.h"

namespace windar::ft {
namespace {

using Enc = TdiProtocol::Encoding;

// Delivers a dense vector into `p` as the `seq`-th delivery.
void deliver_vec(TdiProtocol& p, int src, SeqNo seq,
                 const std::vector<SeqNo>& vec) {
  util::ByteWriter w;
  w.u32_vec(vec);
  p.on_deliver(src, seq, seq, w.view());
}

TEST(TdiDelta, FirstSendOnChannelIsFullResync) {
  TdiProtocol p(0, 8, Enc::kDelta);
  deliver_vec(p, 3, 1, {0, 0, 5, 0, 0, 2, 0, 0});
  const Piggyback pb = p.on_send(1, 1);
  EXPECT_TRUE(pb.resync);
  // The resync carries every non-zero entry — decoding it reproduces the
  // sender's whole vector, exactly like the dense form.
  EXPECT_EQ(TdiProtocol::decode(pb.blob, 8), p.depend_interval());
  EXPECT_EQ(pb.dense_bytes, 4u + 4u * 8u);
}

TEST(TdiDelta, SteadyStateCarriesOnlyChangedEntries) {
  TdiProtocol p(0, 16, Enc::kDelta);
  deliver_vec(p, 3, 1, {0, 0, 5, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0});
  const Piggyback first = p.on_send(1, 1);
  EXPECT_TRUE(first.resync);
  EXPECT_EQ(first.idents, 4u);  // entries 0 (self), 2, 5, 14

  // Nothing changed since: the follow-up delta is empty (the receiver's gate
  // entry, index 1, is zero and zeros are always omittable).
  const Piggyback second = p.on_send(1, 2);
  EXPECT_FALSE(second.resync);
  EXPECT_EQ(second.idents, 0u);
  EXPECT_EQ(second.blob.size(), 4u);  // bare header

  // One entry moves; only it is piggybacked.
  deliver_vec(p, 3, 2, {0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  const Piggyback third = p.on_send(1, 3);
  EXPECT_FALSE(third.resync);
  EXPECT_EQ(third.idents, 2u);  // entry 2 (changed) + entry 0 (self advanced)
  EXPECT_EQ(TdiProtocol::piggybacked_element(third.blob, 2), 9u);
  EXPECT_EQ(TdiProtocol::piggybacked_element(third.blob, 0), 2u);
  EXPECT_EQ(TdiProtocol::piggybacked_element(third.blob, 14), 0u);  // absent
}

TEST(TdiDelta, GateEntryRidesAlongEvenWhenUnchanged) {
  // deliverable() reads the receiver's entry from the message's own blob, so
  // the delta must include index dst whenever it is non-zero — even if the
  // previous send on the channel already carried it.
  TdiProtocol p(0, 8, Enc::kDelta);
  deliver_vec(p, 1, 1, {0, 6, 0, 0, 0, 0, 0, 0});
  (void)p.on_send(1, 1);
  const Piggyback pb = p.on_send(1, 2);
  // Nothing changed between the sends, yet the gate entry is present.
  EXPECT_EQ(TdiProtocol::piggybacked_element(pb.blob, 1), 6u);
}

TEST(TdiDelta, PerChannelBasesAreIndependent) {
  TdiProtocol p(0, 8, Enc::kDelta);
  deliver_vec(p, 3, 1, {0, 0, 5, 0, 0, 0, 0, 0});
  (void)p.on_send(1, 1);          // channel to 1 now has a base
  const Piggyback to2 = p.on_send(2, 1);
  EXPECT_TRUE(to2.resync);        // channel to 2 never saw anything
  EXPECT_EQ(TdiProtocol::decode(to2.blob, 8), p.depend_interval());
}

TEST(TdiDelta, AllThreeEncodingsDecodeIdentically) {
  TdiProtocol dense(0, 6, Enc::kDense);
  TdiProtocol sparse(0, 6, Enc::kSparse);
  TdiProtocol delta(0, 6, Enc::kDelta);
  const std::vector<SeqNo> learned{0, 4, 0, 1, 0, 0};
  deliver_vec(dense, 1, 1, learned);
  deliver_vec(sparse, 1, 1, learned);
  deliver_vec(delta, 1, 1, learned);
  const auto pd = dense.on_send(2, 1);
  const auto ps = sparse.on_send(2, 1);
  const auto pl = delta.on_send(2, 1);
  const auto want = TdiProtocol::decode(pd.blob, 6);
  EXPECT_EQ(TdiProtocol::decode(ps.blob, 6), want);
  EXPECT_EQ(TdiProtocol::decode(pl.blob, 6), want);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(TdiProtocol::piggybacked_element(pl.blob, k),
              TdiProtocol::piggybacked_element(pd.blob, k));
  }
}

TEST(TdiDelta, ReceiverMergesDeltaChainSameAsDense) {
  // Two identical senders, one per encoding, stream three sends down one
  // FIFO channel with vector growth in between; a pair of identical
  // receivers merges each stream.  Final tracked state must agree.
  TdiProtocol sd(2, 8, Enc::kDense);
  TdiProtocol sl(2, 8, Enc::kDelta);
  TdiProtocol rd(1, 8, Enc::kDense);
  TdiProtocol rl(1, 8, Enc::kDelta);
  const std::vector<std::vector<SeqNo>> learn = {
      {0, 0, 0, 3, 0, 0, 0, 0},
      {0, 0, 0, 3, 0, 9, 0, 1},
      {0, 0, 0, 4, 0, 9, 0, 1},
  };
  for (SeqNo i = 0; i < 3; ++i) {
    deliver_vec(sd, 3, i + 1, learn[static_cast<std::size_t>(i)]);
    deliver_vec(sl, 3, i + 1, learn[static_cast<std::size_t>(i)]);
    const auto pd = sd.on_send(1, i + 1);
    const auto pl = sl.on_send(1, i + 1);
    rd.on_deliver(2, i + 1, i + 1, pd.blob);
    rl.on_deliver(2, i + 1, i + 1, pl.blob);
    EXPECT_LE(pl.blob.size(), pd.blob.size());
  }
  EXPECT_EQ(rl.depend_interval(), rd.depend_interval());
}

TEST(TdiDelta, InterleavedChannelsMergeSameAsDense) {
  // Deliveries from two senders interleave at the receiver in an order that
  // is NOT a global serialization of the sends (channel B's first message
  // arrives between channel A's first and second).  FIFO only holds per
  // channel — exactly the guarantee the delta encoding leans on.
  TdiProtocol a_dense(2, 8, Enc::kDense), a_delta(2, 8, Enc::kDelta);
  TdiProtocol b_dense(3, 8, Enc::kDense), b_delta(3, 8, Enc::kDelta);
  TdiProtocol r_dense(1, 8, Enc::kDense), r_delta(1, 8, Enc::kDelta);

  deliver_vec(a_dense, 4, 1, {0, 0, 0, 0, 2, 0, 0, 0});
  deliver_vec(a_delta, 4, 1, {0, 0, 0, 0, 2, 0, 0, 0});
  deliver_vec(b_dense, 5, 1, {0, 0, 0, 0, 0, 6, 0, 0});
  deliver_vec(b_delta, 5, 1, {0, 0, 0, 0, 0, 6, 0, 0});

  const auto a1d = a_dense.on_send(1, 1), a1l = a_delta.on_send(1, 1);
  const auto b1d = b_dense.on_send(1, 1), b1l = b_delta.on_send(1, 1);
  deliver_vec(a_dense, 4, 2, {0, 0, 0, 0, 7, 0, 0, 0});
  deliver_vec(a_delta, 4, 2, {0, 0, 0, 0, 7, 0, 0, 0});
  const auto a2d = a_dense.on_send(1, 2), a2l = a_delta.on_send(1, 2);

  // Arrival order A1, B1, A2 — deliver_seq is the receiver's own count.
  r_dense.on_deliver(2, 1, 1, a1d.blob);
  r_delta.on_deliver(2, 1, 1, a1l.blob);
  r_dense.on_deliver(3, 1, 2, b1d.blob);
  r_delta.on_deliver(3, 1, 2, b1l.blob);
  r_dense.on_deliver(2, 2, 3, a2d.blob);
  r_delta.on_deliver(2, 2, 3, a2l.blob);
  EXPECT_EQ(r_delta.depend_interval(), r_dense.depend_interval());
}

TEST(TdiDelta, FallsBackToDenseWhenPairsWouldBeBigger) {
  // n=3: any delta with >=2 pairs costs 4+16 >= 4+12, so a fully-changed
  // vector ships dense.  The blob stays self-describing either way.
  TdiProtocol p(0, 3, Enc::kDelta);
  deliver_vec(p, 1, 1, {0, 0, 4});
  const Piggyback pb = p.on_send(2, 1);
  EXPECT_EQ(pb.idents, 3u);                    // dense fallback: n idents
  EXPECT_EQ(pb.blob.size(), 4u + 4u * 3u);     // dense layout
  EXPECT_EQ(TdiProtocol::decode(pb.blob, 3), p.depend_interval());

  // The fallback still advances the channel base: an unchanged follow-up
  // (same gate value) goes back to a small delta blob.
  const Piggyback next = p.on_send(2, 2);
  EXPECT_FALSE(next.resync);
  EXPECT_EQ(TdiProtocol::piggybacked_element(next.blob, 2),
            p.depend_interval()[2]);
}

TEST(TdiDelta, RestoreInvalidatesEveryChannelBase) {
  // The rollback scenario the resync exists for: the sender checkpoints,
  // keeps mutating, sends deltas, then restores.  Entries moved BACKWARDS,
  // so a post-restore delta against the pre-crash base would leave the
  // receiver believing stale (higher) values.  restore() must force a full
  // resync on every channel instead.
  TdiProtocol p(0, 8, Enc::kDelta);
  deliver_vec(p, 2, 1, {0, 0, 3, 0, 0, 0, 0, 0});
  util::ByteWriter saved;
  p.save(saved);

  deliver_vec(p, 2, 2, {0, 0, 8, 0, 0, 0, 5, 0});
  (void)p.on_send(1, 1);  // channel base now reflects the doomed state

  util::ByteReader r(saved.view());
  p.restore(r);
  EXPECT_EQ(p.depend_interval(), (std::vector<SeqNo>{1, 0, 3, 0, 0, 0, 0, 0}));

  const Piggyback pb = p.on_send(1, 2);
  EXPECT_TRUE(pb.resync);
  // Full resync: the blob alone reproduces the restored vector — nothing is
  // left to be "filled in" from the stale pre-crash delta chain.
  EXPECT_EQ(TdiProtocol::decode(pb.blob, 8), p.depend_interval());
}

TEST(TdiDelta, FactoryProducesDeltaKind) {
  auto p = make_protocol(ProtocolKind::kTdiDelta, 0, 3);
  EXPECT_EQ(p->kind(), ProtocolKind::kTdiDelta);
  EXPECT_EQ(std::string(to_string(p->kind())), "TDI-D");
}

// ---------------------------------------------------------------------------
// Change journal: the O(churn) encoder must be byte-identical to the
// original O(n) per-send scan, and the journal itself must stay bounded
// however long the protocol runs (the 4096-rank scale bug).
// ---------------------------------------------------------------------------

TEST(TdiDeltaJournal, JournalEncoderIsByteIdenticalToFullScan) {
  // Randomized workload over every channel: before each send, compute the
  // reference blob with the original full scan, then the journal-backed
  // on_send, and require the exact same bytes — same pairs, same order,
  // same dense-fallback decisions.
  const int n = 24;
  TdiProtocol p(0, n, Enc::kDelta);
  std::uint64_t rng = 0x243F6A8885A308D3ull;
  auto next = [&rng](std::uint64_t bound) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return (rng >> 33) % bound;
  };
  std::vector<SeqNo> sent(static_cast<std::size_t>(n), 0);
  std::vector<SeqNo> vec(static_cast<std::size_t>(n), 0);
  SeqNo deliveries = 0;
  for (int step = 0; step < 400; ++step) {
    if (next(3) != 0) {
      // Deliver: bump a few random entries (monotone, like real merges).
      const int touches = 1 + static_cast<int>(next(3));
      for (int t = 0; t < touches; ++t) {
        vec[next(static_cast<std::uint64_t>(n))] += 1 + next(4);
      }
      deliver_vec(p, 1 + static_cast<int>(next(
                          static_cast<std::uint64_t>(n - 1))),
                  ++deliveries, vec);
    } else {
      const int dst = 1 + static_cast<int>(next(
                              static_cast<std::uint64_t>(n - 1)));
      const Piggyback want = p.scan_encode_for_test(dst);
      const Piggyback got =
          p.on_send(dst, ++sent[static_cast<std::size_t>(dst)]);
      ASSERT_EQ(got.blob, want.blob) << "step " << step << " dst " << dst;
      EXPECT_EQ(got.resync, want.resync);
      EXPECT_EQ(got.idents, want.idents);
    }
  }
}

TEST(TdiDeltaJournal, JournalStaysBoundedUnderSustainedChurn) {
  // The seed kept a per-entry change tick but the encoder re-scanned all n
  // entries per send; the journal replaces the scan and is compacted, so
  // its length must stay O(n) no matter how many deliveries accumulate.
  const int n = 32;
  TdiProtocol p(0, n, Enc::kDelta);
  std::vector<SeqNo> vec(static_cast<std::size_t>(n), 0);
  SeqNo sent = 0;
  const std::size_t cap = 4u * static_cast<std::size_t>(n);
  for (SeqNo i = 1; i <= 4096; ++i) {
    vec[static_cast<std::size_t>(i) % static_cast<std::size_t>(n)] = i;
    deliver_vec(p, 1, i, vec);
    EXPECT_LE(p.journal_size_for_test(), cap) << "delivery " << i;
    if (i % 16 == 0) {
      // Live channel: steady sends keep the base recent, so compaction can
      // always find a trim point without forcing resyncs here.
      const Piggyback pb = p.on_send(1, ++sent);
      if (sent > 1) EXPECT_FALSE(pb.resync);
    }
  }
  EXPECT_LE(p.journal_size_for_test(), cap);
}

TEST(TdiDeltaJournal, CompactionForcesResyncOnlyOnStaleChannels) {
  // A channel that last sent long ago has its base compacted away and pays
  // one full resync; a recently-active channel keeps its delta.
  const int n = 8;
  TdiProtocol p(0, n, Enc::kDelta);
  std::vector<SeqNo> vec(static_cast<std::size_t>(n), 0);
  SeqNo deliveries = 0, to1 = 0, to2 = 0;
  deliver_vec(p, 3, ++deliveries, vec);
  (void)p.on_send(1, ++to1);  // channel 1 base set, then goes idle
  for (SeqNo i = 0; i < 2048; ++i) {
    vec[static_cast<std::size_t>(i) % static_cast<std::size_t>(n)] += 1;
    deliver_vec(p, 3, ++deliveries, vec);
    if (i % 8 == 0) (void)p.on_send(2, ++to2);  // channel 2 stays hot
  }
  const Piggyback cold = p.on_send(1, ++to1);
  EXPECT_TRUE(cold.resync);
  EXPECT_EQ(TdiProtocol::decode(cold.blob, n), p.depend_interval());
  const Piggyback hot = p.on_send(2, ++to2);
  EXPECT_FALSE(hot.resync);
}

TEST(TdiDeltaJournal, RestoreClearsJournal) {
  // restore() stamps every entry at one tick, which breaks the journal's
  // position-to-tick mapping — it must drop the journal and lean on the
  // all-bases-invalidated resync instead.
  TdiProtocol p(0, 8, Enc::kDelta);
  util::ByteWriter saved;
  p.save(saved);
  deliver_vec(p, 2, 1, {0, 0, 3, 0, 0, 1, 0, 0});
  EXPECT_GT(p.journal_size_for_test(), 0u);
  util::ByteReader r(saved.view());
  p.restore(r);
  EXPECT_EQ(p.journal_size_for_test(), 0u);
  deliver_vec(p, 2, 1, {0, 0, 4, 0, 0, 1, 0, 0});
  const Piggyback pb = p.on_send(1, 1);
  EXPECT_TRUE(pb.resync);
  EXPECT_EQ(TdiProtocol::decode(pb.blob, 8), p.depend_interval());
}

// ---------------------------------------------------------------------------
// End-to-end: chaos convergence under rollback, where a stale delta base
// would surface as a digest divergence (a receiver gating/merging on values
// the restarted sender never re-reached).
// ---------------------------------------------------------------------------

ChaosPlan delta_plan(std::uint64_t seed = 7) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.n = 4;
  plan.iterations = 30;
  plan.checkpoint_every = 3;
  return plan;
}

TEST(TdiDeltaChaos, ConvergesAcrossRollbacks) {
  ChaosPlan plan = delta_plan();
  plan.events = {kill_on_delivery(1, 8), kill_on_delivery(2, 18)};
  const auto clean = chaos::run_plan(plan, ProtocolKind::kTdi, false);
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdiDelta, true);
  EXPECT_EQ(clean.digest, faulty.digest);
  EXPECT_EQ(faulty.result.total.recoveries, 2u);
  // The restarted senders resynced at least once each.
  EXPECT_GE(faulty.result.total.piggyback_resyncs, 2u);
}

TEST(TdiDeltaChaos, ConvergesOnCooperativeScheduler) {
  ChaosPlan plan = delta_plan(11);
  plan.events = {kill_on_delivery(2, 10)};
  const std::uint64_t clean =
      chaos::run_plan(plan, ProtocolKind::kTdi, false).digest;
  JobConfig cfg = chaos::plan_config(plan, ProtocolKind::kTdiDelta, true);
  cfg.exec_model = exec::ExecModel::kCoop;
  cfg.exec_workers = 2;
  auto sum = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto result = run_job(cfg, [&](Ctx& ctx) {
    sum->fetch_add(chaos::ring_digest_rank(ctx, plan.iterations,
                                           plan.checkpoint_every) %
                   1000000007ull);
  });
  EXPECT_EQ(sum->load(), clean);
  EXPECT_EQ(result.total.recoveries, 1u);
}

}  // namespace
}  // namespace windar::ft
