// Edge-case recovery tests: faults interacting with collectives, blocked
// senders, rendezvous transfers, and the TEL determinant-gather path.
#include <gtest/gtest.h>

#include <atomic>

#include "mp/collectives.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

JobConfig base(int n, ProtocolKind proto = ProtocolKind::kTdi,
               SendMode mode = SendMode::kNonBlocking) {
  JobConfig c;
  c.n = n;
  c.protocol = proto;
  c.mode = mode;
  c.latency = net::LatencyModel::turbulent();
  c.restart_delay_ms = 4;
  return c;
}

TEST(RecoveryEdge, FaultDuringAllreduceSeries) {
  // Collectives are plain logged traffic; killing the tree root mid-series
  // must not change any reduction result.
  auto sums = std::make_shared<std::atomic<long long>>(0);
  JobConfig cfg = base(5);
  cfg.faults = {{0, 6.0}};
  run_job(cfg, [sums](Ctx& ctx) {
    mp::Coll coll(ctx);
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      coll.reset_seq(r.u32());
    }
    long long acc = 0;
    for (int round = start; round < 25; ++round) {
      if (round > 0 && round % 8 == 0) {
        util::ByteWriter w;
        w.i32(round);
        w.u32(coll.seq());
        ctx.checkpoint(w.view());
      }
      const double contrib[1] = {static_cast<double>(ctx.rank() + round)};
      const auto total = coll.allreduce_sum(contrib);
      // n*(n-1)/2 + n*round for n = 5
      EXPECT_DOUBLE_EQ(total[0], 10.0 + 5.0 * round) << "round " << round;
      acc += static_cast<long long>(total[0]);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    if (ctx.rank() == 1) sums->store(acc);
  });
  long long expect = 0;
  for (int round = 0; round < 25; ++round) expect += 10 + 5 * round;
  EXPECT_EQ(sums->load(), expect);
}

TEST(RecoveryEdge, BlockedSenderSurvivesReceiverDeath) {
  // The Fig. 8 mechanism in isolation: a blocking-mode sender is stalled on
  // a rendezvous transfer when the receiver dies; the ROLLBACK-driven
  // resend must eventually complete the send.
  JobConfig cfg = base(2, ProtocolKind::kTdi, SendMode::kBlocking);
  cfg.eager_threshold = 256;        // force rendezvous
  cfg.faults = {{1, 6.0}};
  auto result = run_job(cfg, [](Ctx& ctx) {
    std::vector<std::uint8_t> big(32 * 1024, 0xAA);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 6; ++i) ctx.send(1, 0, big);
    } else {
      for (int i = 0; i < 6; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        auto m = ctx.recv(0, 0);
        ASSERT_EQ(m.payload.size(), big.size());
      }
    }
  });
  EXPECT_EQ(result.total.recoveries, 1u);
  EXPECT_GT(result.total.send_block_ns, 0);
}

TEST(RecoveryEdge, TelGathersStableDeterminantsFromLogger) {
  // Build a long delivery history, give the logger time to absorb it, then
  // kill the rank: the replay table must come (mostly) from the TelQuery.
  JobConfig cfg = base(3, ProtocolKind::kTel);
  cfg.faults = {{0, 10.0}};
  auto out = std::make_shared<std::atomic<long long>>(0);
  run_job(cfg, [out](Ctx& ctx) {
    if (ctx.rank() == 0) {
      long long acc = 0;
      int start = 0;
      if (ctx.restored()) {
        util::ByteReader r(*ctx.restored());
        start = r.i32();
        acc = r.i64();
      }
      for (int i = start; i < 40; ++i) {
        if (i == 12) {
          util::ByteWriter w;
          w.i32(i);
          w.i64(acc);
          ctx.checkpoint(w.view());
        }
        // Two independent producers, ANY_SOURCE: order matters to the
        // digest only through the commutative sum.
        acc += recv_value<int>(ctx) + recv_value<int>(ctx);
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
      out->store(acc);
    } else {
      for (int i = 0; i < 40; ++i) {
        send_value(ctx, 0, 1, ctx.rank() * 100 + i);
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    }
  });
  long long expect = 0;
  for (int i = 0; i < 40; ++i) expect += 100 + i + 200 + i;
  EXPECT_EQ(out->load(), expect);
}

TEST(RecoveryEdge, ZeroEagerThresholdStillCompletes) {
  JobConfig cfg = base(2, ProtocolKind::kTdi, SendMode::kBlocking);
  cfg.eager_threshold = 0;  // every transfer is rendezvous
  run_job(cfg, [](Ctx& ctx) {
    const int peer = 1 - ctx.rank();
    for (int i = 0; i < 10; ++i) {
      if (ctx.rank() == 0) {
        send_value(ctx, peer, 0, i);
        EXPECT_EQ(recv_value<int>(ctx, peer, 0), i);
      } else {
        EXPECT_EQ(recv_value<int>(ctx, peer, 0), i);
        send_value(ctx, peer, 0, i);
      }
    }
  });
}

TEST(RecoveryEdge, FaultStormAllProtocols) {
  // Three staggered faults on three different ranks.
  for (auto proto : {ProtocolKind::kTdi, ProtocolKind::kTag,
                     ProtocolKind::kTel}) {
    auto run = [&](std::vector<FaultEvent> faults) {
      JobConfig cfg = base(4, proto);
      cfg.faults = std::move(faults);
      auto digest = std::make_shared<std::atomic<std::uint64_t>>(0);
      run_job(cfg, [digest](Ctx& ctx) {
        const int n = ctx.size();
        std::uint64_t h = 7 + static_cast<std::uint64_t>(ctx.rank());
        int start = 0;
        if (ctx.restored()) {
          util::ByteReader r(*ctx.restored());
          start = r.i32();
          h = r.u64();
        }
        for (int i = start; i < 35; ++i) {
          if (i > 0 && i % 7 == 0) {
            util::ByteWriter w;
            w.i32(i);
            w.u64(h);
            ctx.checkpoint(w.view());
          }
          send_value(ctx, (ctx.rank() + 1) % n, 0, h);
          h = h * 31 + recv_value<std::uint64_t>(ctx, (ctx.rank() + n - 1) % n, 0);
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
        digest->fetch_add(h % 1000003);
      });
      return digest->load();
    };
    const std::uint64_t clean = run({});
    const std::uint64_t faulted = run({{1, 5.0}, {3, 9.0}, {2, 14.0}});
    EXPECT_EQ(clean, faulted) << to_string(proto);
  }
}

}  // namespace
}  // namespace windar::ft
